"""Backend selection for replication-heavy Monte-Carlo sweeps.

Two interchangeable backends simulate N independent (lifetime,
checkpoint-plan) replications:

``"event"``
    The reference implementation: one :class:`repro.sim.engine.Simulator`
    per replication, with segment completions and preemptions as real
    scheduled events (cancellation included).  Exact but Python-speed;
    it is also the semantics oracle for anything that genuinely needs
    event interleaving (gang scheduling, the batch service).

``"vectorized"``
    The batched NumPy kernel of :mod:`repro.sim.vectorized`: all
    replications advance together as arrays, rounds touch only the
    still-unfinished ones.  10-100x faster at 10k replications.

Determinism contract
--------------------
Both backends consume uniforms through the same *round protocol*: round
``r`` is one ``rng.random(n)`` row and replication ``i``'s ``r``-th VM
lifetime is ``ppf(...)`` of column ``i`` (the first VM conditioned on
survival to ``start_age``).  For an identical seed, distribution, and
configuration the two backends therefore produce identical
per-replication outcomes up to float associativity (< 1e-9 hours); the
cross-backend equivalence suite pins this down.  Note the generator is
advanced by whole rounds, so the *number* of values consumed depends on
the slowest replication — do not interleave other draws from the same
generator and expect stability.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.distributions.base import LifetimeDistribution
from repro.obs.core import (
    Instrumentation,
    KernelStats,
    MetricsRegistry,
    current_instrumentation,
    peak_rss_bytes,
)
from repro.sim.engine import EventHandle, Simulator
from repro.sim.vectorized import conditional_quantiles, simulate_plan_vectorized
from repro.utils.validation import check_nonnegative, check_positive

__all__ = [
    "DrawCapture",
    "ReplicationOutcomes",
    "run_replications",
    "ClusterOutcomes",
    "run_cluster_replications",
    "ServiceOutcomes",
    "run_service_replications",
    "TenantOutcomes",
    "run_tenant_replications",
    "BACKENDS",
]

#: Valid values for the ``backend`` argument of every entry point.
BACKENDS = ("event", "vectorized")

#: Extra backend accepted by :func:`run_replications` only — the opt-in
#: compiled inner loop of :mod:`repro.sim.compiled` (soft dependency).
COMPILED_BACKEND = "vectorized-compiled"


class DrawCapture:
    """Realized round-protocol uniforms of one sweep (the oracle hook).

    Pass a fresh instance as ``capture=`` to any replication entry
    point; after the sweep, ``rows`` holds every ``rng.random(n)`` row
    the run consumed, in round order — the *exact* randomness behind
    the outcomes, regardless of backend.  Replication ``i``'s ``k``-th
    lifetime draw is ``ppf(rows[k][i])``, so the hindsight-optimal
    oracle (:mod:`repro.baselines`) can be scored on the same draws as
    the policy, giving draw-level regret pairing.

    A capture records one sweep: reuse raises, because rows from two
    sweeps would interleave into nonsense.
    """

    def __init__(self) -> None:
        #: One ``(n_replications,)`` uniform row per round, in order.
        self.rows: list[np.ndarray] = []

    @property
    def n_rounds(self) -> int:
        return len(self.rows)

    @property
    def uniforms(self) -> np.ndarray:
        """The round table, shape ``(n_rounds, n_replications)``."""
        if not self.rows:
            return np.empty((0, 0))
        return np.vstack(self.rows)

    def lifetimes(
        self, dist: LifetimeDistribution, *, start_age: float | None = None
    ) -> np.ndarray:
        """Realized VM lifetimes, shape ``(n_rounds, n_replications)``.

        Rows map through ``dist.ppf`` exactly as the backends do.  With
        ``start_age`` (the :func:`run_replications` protocol) the first
        row is conditioned on survival to that age; the fleet sweeps
        boot every VM fresh, so their captures leave it ``None``.

        Replication ``i`` consumed only its first ``n_draws[i]`` values
        (the outcome field); trailing entries of a column are rounds
        materialised for slower replications.
        """
        u = self.uniforms
        if start_age is not None and u.shape[0]:
            u = u.copy()
            F = float(np.asarray(dist.cdf(float(start_age)), dtype=float))
            u[0] = conditional_quantiles(u[0], F)
        return np.asarray(dist.ppf(u), dtype=float)

    def _arm(self) -> None:
        """Entry-point guard: a capture records exactly one sweep."""
        if self.rows:
            raise ValueError(
                "this DrawCapture already recorded a sweep; "
                "pass a fresh instance per run"
            )


class _RecordingRNG:
    """Duck-typed generator shim copying every round row into a capture.

    Both backends consume randomness exclusively through
    ``rng.random(n)`` round rows (the determinism contract), so
    recording at that choke point captures the complete randomness of
    a sweep without touching either simulation path.
    """

    def __init__(self, rng: np.random.Generator, capture: DrawCapture):
        self._rng = rng
        self._capture = capture

    def random(self, n: int) -> np.ndarray:
        row = self._rng.random(n)
        self._capture.rows.append(np.array(row, copy=True))
        return row


# ----------------------------------------------------------------------
# Process sharding: CRN-paired shards of one serial round stream
# ----------------------------------------------------------------------

class _ShardRNG:
    """Duck-typed generator serving one shard's columns of a round stream.

    CRN shard pairing: the wrapped generator is an exact copy of the
    serial root, every ``random`` call draws the *full* serial-width
    row(s), and only the shard's ``[lo, hi)`` column slice is served.
    Column ``i`` of round ``r`` therefore holds the same value under
    every shard layout — including ``workers=1`` — which is what makes
    merged sharded outcomes byte-identical to the serial sweep.

    Shards run for different round counts (each stops when its own
    slowest replication finishes), but a shard that needs round ``r``
    always draws rounds ``0..r`` in serial order from its private copy,
    so no coordination between workers is needed.
    """

    def __init__(self, rng: np.random.Generator, lo: int, hi: int, full_width: int):
        self._rng = rng
        self._lo = lo
        self._hi = hi
        self._full = full_width

    def random(self, size):
        width = self._hi - self._lo
        if isinstance(size, tuple):  # block mode: (rows, n) round rows
            rows, n = size
            if n != width:
                raise ValueError(
                    f"shard expected width-{width} round rows, got {size}"
                )
            block = self._rng.random((rows, self._full))
            return np.ascontiguousarray(block[:, self._lo : self._hi])
        if size != width:
            raise ValueError(
                f"shard expected width-{width} round rows, got {size}"
            )
        return np.ascontiguousarray(self._rng.random(self._full)[self._lo : self._hi])


def _shard_bounds(n: int, n_shards: int) -> list[tuple[int, int]]:
    """Contiguous ``[lo, hi)`` replication ranges, longest shards first."""
    base, extra = divmod(n, n_shards)
    bounds, lo = [], 0
    for s in range(n_shards):
        hi = lo + base + (1 if s < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def _check_workers(workers, capture) -> int:
    """Validate the ``workers`` / ``capture`` combination up front."""
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers > 1 and capture is not None:
        raise ValueError(
            "capture is incompatible with workers > 1: rows are drawn "
            "inside worker processes, where the capture object cannot "
            "observe them; record draws with workers=1"
        )
    return workers


def _require_picklable(payload) -> None:
    """Raise ``ValueError`` *before* any worker spawns on bad inputs."""
    import pickle

    try:
        pickle.dumps(payload)
    except Exception as exc:
        raise ValueError(
            "workers > 1 ships the distribution, configuration, and "
            f"inputs to worker processes via pickle, which failed: {exc}"
        ) from exc


def _shard_task(payload):
    """Run one shard in a worker process (module-level, hence picklable).

    ``payload`` is ``(kind, backend, rng, lo, hi, full_width, args)``
    where ``rng`` is this shard's private copy of the chunk's root
    generator (copied by pickling) and ``args`` the kernel inputs.
    """
    kind, backend, rng, lo, hi, full, args = payload
    shard_rng = _ShardRNG(rng, lo, hi, full)
    size = hi - lo
    # Instrumented shards count into a private registry and ship the
    # picklable snapshot home inside the raw dict; the parent merges
    # (deterministically — Snapshot.merge is order-independent).
    reg = MetricsRegistry() if args.get("instrument") else None
    if kind == "plan":
        if backend == COMPILED_BACKEND:
            from repro.sim.compiled import simulate_plan_compiled

            # Worker generators are private copies nobody observes
            # afterwards, so block drawing is always safe here.
            kernel = simulate_plan_compiled
        elif backend == "vectorized":
            kernel = simulate_plan_vectorized
        else:
            kernel = _simulate_plan_event
        start = args["start_age"]
        return kernel(
            args["dist"],
            args["segments"],
            delta=args["delta"],
            start_age=start if np.ndim(start) == 0 else start[lo:hi],
            restart_latency=args["restart_latency"],
            n_replications=size,
            rng=shard_rng,
            max_rounds=args["max_rounds"],
        )
    if kind == "cluster":
        from repro.sim.cluster_vectorized import simulate_cluster_vectorized

        kernel = (
            simulate_cluster_vectorized
            if backend == "vectorized"
            else _simulate_cluster_event
        )
        raw = kernel(
            args["dist"], args["jobs"], args["config"],
            n_replications=size, rng=shard_rng, max_events=args["max_events"],
            obs=reg,
        )
    elif kind == "service":
        from repro.sim.service_vectorized import simulate_service_vectorized

        kernel = (
            simulate_service_vectorized
            if backend == "vectorized"
            else _simulate_service_event
        )
        raw = kernel(
            args["dist"], args["jobs"], args["config"],
            n_replications=size, rng=shard_rng, max_events=args["max_events"],
            obs=reg,
        )
    elif kind == "tenancy":
        from repro.sim.tenancy_vectorized import simulate_tenancy_vectorized

        kernel = (
            simulate_tenancy_vectorized
            if backend == "vectorized"
            else _simulate_tenancy_event
        )
        raw = kernel(
            args["dist"], args["traffic"], args["n_tenants"], args["config"],
            n_replications=size, rng=shard_rng, max_events=args["max_events"],
            obs=reg,
        )
    else:
        raise ValueError(f"unknown shard kind {kind!r}")
    if reg is not None:
        reg.gauge("proc.peak_rss").set(peak_rss_bytes())
        raw["obs_snapshot"] = reg.snapshot()
    return raw


def _run_sharded(payloads, workers: int):
    """Fan shard payloads out over a process pool, results in order."""
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    _require_picklable(payloads[0])
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # platforms without fork: spawn works too
        ctx = multiprocessing.get_context()
    with ProcessPoolExecutor(
        max_workers=min(workers, len(payloads)), mp_context=ctx
    ) as pool:
        return list(pool.map(_shard_task, payloads))


def _merge_raws(raws: list[dict]) -> dict:
    """Reduce per-shard/per-chunk raw dicts back into one serial batch."""
    if len(raws) == 1:
        return raws[0]
    merged = {
        key: np.concatenate([r[key] for r in raws], axis=0)
        for key in raws[0]
        # Scalar / side-channel keys are not per-replication arrays:
        # round counts reduce by max, obs snapshots via _RunObs.absorb.
        if key not in ("n_rounds", "obs_snapshot")
    }
    merged["n_rounds"] = max(r["n_rounds"] for r in raws)
    return merged


# ----------------------------------------------------------------------
# Instrumentation plumbing (the observability plane's backend hooks)
# ----------------------------------------------------------------------

@contextmanager
def _timed_phase(phases: dict, tracer, name: str):
    t0 = time.perf_counter()
    with tracer.span(name):
        try:
            yield
        finally:
            phases[name] = phases.get(name, 0.0) + (time.perf_counter() - t0)


class _RunObs:
    """Per-invocation instrumentation state of one entry-point call.

    Resolves the ``instrument=`` argument (an :class:`Instrumentation`
    bundle, ``True`` for a fresh one, or ``None`` to consult the
    ambient stack — usually off), owns the run's *private* registry so
    per-run stats stay per-run even when one bundle spans many calls,
    times orchestration phases, and assembles the :class:`KernelStats`
    record.  When instrumentation is off every method is a cheap no-op,
    and the simulation paths receive ``obs=None`` — the zero-overhead
    contract.

    Draw-neutrality note: nothing in here touches the generator; the
    kernels' counting sites only *read* simulation state.  The byte-
    identity suite (``tests/test_obs_neutrality.py``) pins this.
    """

    def __init__(self, instrument, kind: str, backend: str):
        if instrument is None:
            inst = current_instrumentation()
        elif instrument is True:
            inst = Instrumentation()
        elif instrument is False:
            inst = None
        else:
            inst = instrument
        self.inst = inst
        self.reg: MetricsRegistry | None = (
            MetricsRegistry() if inst is not None else None
        )
        self.phases: dict[str, float] = {}
        self.kind = kind
        self.backend = backend
        self.shards: tuple[tuple[int, int], ...] = ()
        self.chunk_sizes: tuple[int, ...] = ()
        self._t0 = time.perf_counter()

    @property
    def on(self) -> bool:
        return self.inst is not None

    def timed(self, name: str):
        """Context manager timing one orchestration phase (+ a span)."""
        if self.inst is None:
            return nullcontext()
        return _timed_phase(self.phases, self.inst.tracer, name)

    def absorb(self, raws: list[dict]) -> None:
        """Merge worker-shard registry snapshots carried in raw dicts."""
        for r in raws:
            snap = r.pop("obs_snapshot", None)
            if snap is not None and self.reg is not None:
                self.reg.merge_snapshot(snap)

    def progress(self, done: int, total: int) -> None:
        """Invoke the bundle's progress callback (chunk streaming)."""
        if self.inst is None or self.inst.progress is None:
            return
        elapsed = time.perf_counter() - self._t0
        eta = (
            elapsed * (total - done) / done if done > 0 else float("inf")
        )
        self.inst.progress(done, total, elapsed, eta)

    def finish(
        self,
        *,
        n: int,
        n_rounds: int,
        n_draws: int,
        channel_events: dict[str, int] | None,
        rng_rows: int | None = None,
        workers: int = 1,
    ) -> KernelStats | None:
        """Build the KernelStats record and fold the run's metrics into
        the bundle's cumulative registry.  ``channel_events=None`` reads
        the kernel-counted ``events.*`` counters (vectorized backends);
        the event paths pass the oracle-derived dict instead, so the
        cross-backend stats comparison is an independent check of the
        kernels' pick classification."""
        if self.inst is None or self.reg is None:
            return None
        snap = self.reg.snapshot()
        if channel_events is None:
            channel_events = {
                name.split(".", 1)[1]: int(v)
                for name, v in snap.counters.items()
                if name.startswith("events.")
            }
        else:
            # Derived channels (plan restarts, event-oracle death/comp/
            # boot) are computed from outputs rather than counted in the
            # registry; backfill them so the cumulative bundle registry
            # (and any --metrics-out dump) carries the same events.*
            # counters regardless of backend.  Counters already present
            # (e.g. events.reap, counted live) are left alone.
            missing = {
                k: int(v)
                for k, v in channel_events.items()
                if f"events.{k}" not in snap.counters
            }
            if missing:
                for k, v in missing.items():
                    self.reg.inc(f"events.{k}", v)
                snap = self.reg.snapshot()
        occupancy = []
        while True:
            g = snap.gauges.get(f"pool.occupancy.{len(occupancy)}")
            if g is None:
                break
            occupancy.append(int(g["max"]))
        stats = KernelStats(
            kind=self.kind,
            backend=self.backend,
            n_replications=int(n),
            workers=int(workers),
            shards=tuple(self.shards),
            chunk_sizes=tuple(self.chunk_sizes),
            n_rounds=int(n_rounds),
            rng_rows=int(
                snap.gauge_max("rng.rows") if rng_rows is None else rng_rows
            ),
            n_draws=int(n_draws),
            channel_events={k: int(v) for k, v in channel_events.items()},
            stall_terminations=int(snap.counter("stall.terminations")),
            boot_grace_activations=int(snap.counter("stall.graced")),
            livelock_peak_streak=int(snap.gauge_max("livelock.peak_streak")),
            peak_queue_depth=int(snap.gauge_max("queue.peak_depth")),
            pool_occupancy=tuple(occupancy),
            phase_seconds={k: float(v) for k, v in self.phases.items()},
            peak_rss_bytes=max(int(snap.gauge_max("proc.peak_rss")), peak_rss_bytes()),
        )
        self.inst.registry.merge_snapshot(snap)
        return stats


@dataclass(frozen=True)
class ReplicationOutcomes:
    """Per-replication results of one :func:`run_replications` sweep.

    Attributes
    ----------
    makespan:
        Wall-clock hours to completion (work + checkpoint writes +
        recomputation + restart latency), shape ``(n,)``.
    wasted_hours:
        Hours lost past the last durable checkpoint, summed over all
        preemptions, shape ``(n,)``.
    completed_work:
        Durably saved work hours; equals the job length for every
        replication once the sweep terminates, shape ``(n,)``.
    n_restarts:
        Preemption count per replication, shape ``(n,)``.
    n_rounds:
        VM generations the batch needed (= 1 + max restarts).
    backend:
        Which backend produced the arrays.
    """

    makespan: np.ndarray
    wasted_hours: np.ndarray
    completed_work: np.ndarray
    n_restarts: np.ndarray
    n_rounds: int
    backend: str
    #: Per-run diagnostics when the sweep ran with ``instrument=``;
    #: ``None`` otherwise (the zero-overhead default).
    stats: KernelStats | None = None

    @property
    def n_replications(self) -> int:
        return int(self.makespan.size)

    @property
    def mean_makespan(self) -> float:
        return float(self.makespan.mean())

    @property
    def mean_wasted_hours(self) -> float:
        return float(self.wasted_hours.mean())

    @property
    def failure_fraction(self) -> float:
        """Fraction of replications preempted at least once."""
        return float(np.mean(self.n_restarts > 0))

    def mean_overhead_fraction(self, job_length: float) -> float:
        """``(E[makespan] - J) / J`` — the Fig. 8 y-axis (as a fraction)."""
        J = check_positive("job_length", job_length)
        return (self.mean_makespan - J) / J

    def total_cost(self, price_per_hour: float) -> float:
        """Summed VM-hours billed across replications times the hourly price."""
        return float(self.makespan.sum()) * check_nonnegative(
            "price_per_hour", price_per_hour
        )


class _RoundUniforms:
    """Lazily materialised round-protocol uniforms, shared by backends.

    Rounds are generated in order, each as one ``rng.random(n)`` row, so
    every consumer advances the generator identically; replication ``i``
    reads column ``i`` of each row it needs — scalar (:meth:`value`, the
    event paths) or gathered per-replication (:meth:`gather`, the
    cluster kernel, where draw counters differ across replications).
    """

    def __init__(self, rng: np.random.Generator, n: int):
        self._rng = rng
        self._n = n
        self._buf = np.empty((0, n))
        self._filled = 0

    def _materialise(self, rounds: int) -> None:
        while self._filled < rounds:
            if self._filled >= self._buf.shape[0]:
                grown = np.empty((max(4, 2 * self._buf.shape[0]), self._n))
                grown[: self._filled] = self._buf[: self._filled]
                self._buf = grown
            self._buf[self._filled] = self._rng.random(self._n)
            self._filled += 1

    def value(self, replication: int, round_index: int) -> float:
        self._materialise(round_index + 1)
        return float(self._buf[round_index, replication])

    def gather(self, replications: np.ndarray, round_indices: np.ndarray) -> np.ndarray:
        """``value`` over aligned index vectors, in one fancy-index pass."""
        if round_indices.size:
            self._materialise(int(round_indices.max()) + 1)
        return self._buf[round_indices, replications]


class _EventReplication:
    """One replication driven through the discrete-event engine.

    Each segment schedules its completion event; when the current VM dies
    before the segment's end, a preemption event is scheduled too and the
    loser is cancelled — exercising the engine's cancellation path the
    way the full cluster simulation does.
    """

    def __init__(
        self,
        dist: LifetimeDistribution,
        segments: np.ndarray,
        durations: np.ndarray,
        cdf_at_start: float,
        start_age: float,
        restart_latency: float,
        uniforms: _RoundUniforms,
        replication: int,
        max_rounds: int,
    ):
        self.sim = Simulator()
        self.dist = dist
        self.segments = segments
        self.durations = durations
        self.cdf_at_start = cdf_at_start
        self.start_age = start_age
        self.restart_latency = restart_latency
        self.uniforms = uniforms
        self.replication = replication
        self.max_rounds = max_rounds
        self.wasted = 0.0
        self.completed = 0.0
        self.restarts = 0
        self.rounds = 0
        self.k = 0  # next segment to (re)run
        self.vm_age = 0.0
        self.death_age = 0.0
        self.segment_start = 0.0
        self.completion_handle: EventHandle | None = None
        self.preempt_handle: EventHandle | None = None

    def run(self) -> tuple[float, float, float, int, int]:
        self._acquire_vm()
        self.sim.run()
        return (self.sim.now, self.wasted, self.completed, self.restarts, self.rounds)

    def _acquire_vm(self) -> None:
        if self.rounds >= self.max_rounds:
            raise RuntimeError(
                f"replication {self.replication} unfinished after "
                f"{self.max_rounds} rounds; schedule cannot finish under "
                "this lifetime law"
            )
        u = self.uniforms.value(self.replication, self.rounds)
        if self.rounds == 0:
            q = conditional_quantiles(u, self.cdf_at_start)
            self.vm_age = self.start_age
        else:
            q = u
            self.vm_age = 0.0
        self.death_age = float(self.dist.ppf(q))
        self.rounds += 1
        self._launch_segment()

    def _launch_segment(self) -> None:
        w = float(self.durations[self.k])
        self.segment_start = self.sim.now
        self.completion_handle = self.sim.schedule(w, self._segment_done)
        if self.death_age < self.vm_age + w:
            # Dies strictly inside the segment; at an exact boundary the
            # segment completes (ties favour completion in both backends).
            self.preempt_handle = self.sim.schedule(
                max(self.death_age - self.vm_age, 0.0), self._preempted
            )
        else:
            self.preempt_handle = None

    def _segment_done(self) -> None:
        if self.preempt_handle is not None:
            self.preempt_handle.cancel()
            self.preempt_handle = None
        self.completed += float(self.segments[self.k])
        self.vm_age += float(self.durations[self.k])
        self.k += 1
        if self.k < self.segments.size:
            self._launch_segment()

    def _preempted(self) -> None:
        if self.completion_handle is not None:
            self.completion_handle.cancel()
            self.completion_handle = None
        self.wasted += self.sim.now - self.segment_start
        self.restarts += 1
        if self.restart_latency > 0.0:
            self.sim.schedule(self.restart_latency, self._acquire_vm)
        else:
            self._acquire_vm()


def _simulate_plan_event(
    dist: LifetimeDistribution,
    segments: np.ndarray,
    *,
    delta: float,
    start_age,
    restart_latency: float,
    n_replications: int,
    rng: np.random.Generator,
    max_rounds: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    durations = segments.copy()
    if segments.size > 1:
        durations[:-1] += delta
    # start_age is a scalar or a (n_replications,) array; F is evaluated
    # with the same array shape the vectorized kernel uses, so the
    # per-element conditioning values match bit-for-bit either way.
    given = np.asarray(start_age, dtype=float)
    if given.ndim == 0:
        F_arr = np.full(n_replications, float(np.asarray(dist.cdf(given), dtype=float)))
        start_arr = np.full(n_replications, float(given))
    else:
        F_arr = np.asarray(dist.cdf(given), dtype=float)
        start_arr = given
    uniforms = _RoundUniforms(rng, n_replications)
    makespan = np.zeros(n_replications)
    wasted = np.zeros(n_replications)
    completed = np.zeros(n_replications)
    restarts = np.zeros(n_replications, dtype=np.int64)
    n_rounds = 0
    for i in range(n_replications):
        rep = _EventReplication(
            dist,
            segments,
            durations,
            float(F_arr[i]),
            float(start_arr[i]),
            restart_latency,
            uniforms,
            i,
            max_rounds,
        )
        makespan[i], wasted[i], completed[i], restarts[i], rounds_i = rep.run()
        n_rounds = max(n_rounds, rounds_i)
    return makespan, wasted, completed, restarts, n_rounds


def run_replications(
    dist: LifetimeDistribution,
    segments: Sequence[float],
    *,
    delta: float = 1.0 / 60.0,
    start_age: float | Sequence[float] | np.ndarray = 0.0,
    restart_latency: float = 0.0,
    n_replications: int = 1000,
    seed: int | np.random.Generator | None = 0,
    backend: str = "vectorized",
    max_rounds: int = 10_000,
    workers: int = 1,
    capture: DrawCapture | None = None,
    instrument=None,
) -> ReplicationOutcomes:
    """Simulate ``n_replications`` runs of a checkpoint plan under ``dist``.

    Parameters
    ----------
    dist:
        Lifetime law of the VMs (any :class:`LifetimeDistribution`).
    segments:
        Work-hours between consecutive checkpoints; the final segment is
        not followed by a checkpoint write.
    delta:
        Checkpoint write cost in hours.
    start_age:
        Age of the first VM; its lifetime is conditioned on surviving to
        this age.  Replacement VMs are fresh.  Either one scalar age for
        the whole batch, or an array of shape ``(n_replications,)``
        giving each replication its own first-VM age — the shape the
        policy-evaluation layer uses to score reuse decisions over
        sampled VM ages.
    restart_latency:
        Extra hours charged per preemption for acquiring the replacement.
    seed:
        Root seed (or an existing generator) for the round-protocol
        draws.  Identical seeds give identical per-replication outcomes
        on *both* backends (within 1e-9 hours); pass ``None`` for
        OS-entropy seeding.
    backend:
        ``"vectorized"`` (default) or ``"event"`` — see the module
        docstring for the trade-off.
    max_rounds:
        Safety cap on VM generations before declaring the plan
        unfinishable.
    workers:
        Shard the replication batch across this many worker processes.
        Shards are contiguous replication ranges paired to the serial
        stream by common random numbers: each worker replays the serial
        root generator, draws full-width round rows, and consumes only
        its own columns, so the merged outcomes are *byte-identical* to
        ``workers=1`` for every backend.  A ``Generator`` seed is
        copied to each worker; the caller's instance is left untouched.
        Incompatible with ``capture``.
    capture:
        Optional fresh :class:`DrawCapture`; records every consumed
        round row so the realized draws can be re-scored (e.g. by the
        hindsight-optimal oracle) with draw-level pairing.
    instrument:
        Observability switch: ``None`` (default) consults the ambient
        :func:`repro.obs.instrumented` stack — usually off, the
        zero-overhead path; ``True`` builds a fresh
        :class:`repro.obs.Instrumentation` bundle; ``False`` forces
        off; or pass a bundle directly.  When on, the returned
        outcomes carry a :class:`repro.obs.KernelStats` in ``.stats``.
        Instrumentation never consumes an RNG draw and never changes
        an outcome (pinned byte-identical by the neutrality tests).

    Returns
    -------
    ReplicationOutcomes
        Per-replication makespan / wasted hours / completed work /
        restart counts.
    """
    if backend not in BACKENDS and backend != COMPILED_BACKEND:
        raise ValueError(
            f"backend must be one of {BACKENDS + (COMPILED_BACKEND,)}, "
            f"got {backend!r}"
        )
    segs = np.asarray(segments, dtype=float)
    if segs.size == 0:
        raise ValueError("segments must be non-empty")
    good = np.isfinite(segs) & (segs > 0.0)
    if not good.all():
        check_positive("segment", segs.ravel()[np.flatnonzero(~good.ravel())[0]])
    check_nonnegative("delta", delta)
    check_nonnegative("restart_latency", restart_latency)
    if n_replications < 0:
        raise ValueError(f"n_replications must be >= 0, got {n_replications}")
    check_positive("max_rounds", max_rounds)
    start_arr = np.asarray(start_age, dtype=float)
    if start_arr.ndim == 0:
        start_val: float | np.ndarray = check_nonnegative("start_age", float(start_arr))
    else:
        if start_arr.shape != (int(n_replications),):
            raise ValueError(
                "per-replication start_age must have shape "
                f"({n_replications},), got {start_arr.shape}"
            )
        if np.any(start_arr < 0.0):
            raise ValueError("start_age entries must be >= 0")
        start_val = start_arr
    workers = _check_workers(workers, capture)
    n = int(n_replications)
    # Plan stats are fully derivable from the outputs (one lifetime draw
    # per VM acquisition, one RNG row per round), so no kernel hooks are
    # needed on any of the three plan backends — compiled included.
    robs = _RunObs(instrument, "plan", backend)
    if workers > 1 and n > 1:
        root = (
            seed if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        args = dict(
            dist=dist,
            segments=segs,
            delta=float(delta),
            start_age=start_val,
            restart_latency=float(restart_latency),
            max_rounds=int(max_rounds),
        )
        bounds = _shard_bounds(n, min(workers, n))
        robs.shards = tuple(bounds)
        payloads = [("plan", backend, root, lo, hi, n, args) for lo, hi in bounds]
        with robs.timed("shards"):
            outs = _run_sharded(payloads, workers)
        with robs.timed("merge"):
            makespan = np.concatenate([o[0] for o in outs])
            wasted = np.concatenate([o[1] for o in outs])
            completed = np.concatenate([o[2] for o in outs])
            restarts = np.concatenate([o[3] for o in outs])
            n_rounds = max(o[4] for o in outs)
        return ReplicationOutcomes(
            makespan=makespan,
            wasted_hours=wasted,
            completed_work=completed,
            n_restarts=restarts,
            n_rounds=n_rounds,
            backend=backend,
            stats=robs.finish(
                n=n,
                n_rounds=int(n_rounds),
                n_draws=int(restarts.sum()) + n,
                channel_events={"restart": int(restarts.sum())},
                rng_rows=int(n_rounds),
                workers=workers,
            ),
        )
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    if capture is not None:
        capture._arm()
        rng = _RecordingRNG(rng, capture)
    if backend == COMPILED_BACKEND:
        from repro.sim.compiled import simulate_plan_compiled

        # Block drawing may advance the generator past the final round;
        # only safe when nobody can observe the generator afterwards.
        stream_exact = isinstance(seed, np.random.Generator) or capture is not None
        with robs.timed(f"simulate:{backend}"):
            makespan, wasted, completed, restarts, n_rounds = simulate_plan_compiled(
                dist,
                segs,
                delta=float(delta),
                start_age=start_val,
                restart_latency=float(restart_latency),
                n_replications=int(n_replications),
                rng=rng,
                max_rounds=int(max_rounds),
                stream_exact=stream_exact,
            )
    else:
        kernel = (
            simulate_plan_vectorized if backend == "vectorized" else _simulate_plan_event
        )
        with robs.timed(f"simulate:{backend}"):
            makespan, wasted, completed, restarts, n_rounds = kernel(
                dist,
                segs,
                delta=float(delta),
                start_age=start_val,
                restart_latency=float(restart_latency),
                n_replications=int(n_replications),
                rng=rng,
                max_rounds=int(max_rounds),
            )
    return ReplicationOutcomes(
        makespan=makespan,
        wasted_hours=wasted,
        completed_work=completed,
        n_restarts=restarts,
        n_rounds=n_rounds,
        backend=backend,
        stats=robs.finish(
            n=n,
            n_rounds=int(n_rounds),
            n_draws=int(np.asarray(restarts).sum()) + n,
            channel_events={"restart": int(np.asarray(restarts).sum())},
            rng_rows=int(n_rounds),
        ),
    )


# ----------------------------------------------------------------------
# Cluster-scale sweeps: N whole-cluster (bag-of-gangs) replications
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ClusterOutcomes:
    """Per-replication results of one :func:`run_cluster_replications` sweep.

    Attributes
    ----------
    makespan:
        Hours from submission (t = 0) to the bag's last job completion,
        shape ``(n,)``.
    wasted_hours:
        Hours of segment work (including in-flight checkpoint writes)
        lost to gang preemptions, summed over all job aborts.
    completed_jobs:
        Jobs finished per replication (the bag size once a sweep
        terminates).
    n_job_failures:
        Gang aborts (a job losing a VM mid-attempt), per replication.
    n_preemptions:
        VM deaths observed before the bag finished (idle VMs included).
    vm_hours:
        Billable VM hours: every VM from boot to its death, refresh
        termination, or the bag's completion time.
    n_events:
        Discrete events (deaths + segment completions) processed; equal
        across backends by construction.
    n_draws:
        Lifetime uniforms consumed per replication under the cluster
        round protocol.
    n_rounds:
        Lockstep rounds the batch needed (= max of ``n_events``).
    backend:
        Which backend produced the arrays.
    pool_vm_hours:
        Per-pool split of ``vm_hours``, shape ``(n, n_pools)`` — one
        column per catalog entry (a single column for the default
        anonymous pool).  ``pool_vm_hours @ prices`` gives each
        replication's heterogeneous-fleet bill.
    """

    makespan: np.ndarray
    wasted_hours: np.ndarray
    completed_jobs: np.ndarray
    n_job_failures: np.ndarray
    n_preemptions: np.ndarray
    vm_hours: np.ndarray
    n_events: np.ndarray
    n_draws: np.ndarray
    n_rounds: int
    backend: str
    pool_vm_hours: np.ndarray | None = None
    #: Per-run diagnostics when the sweep ran with ``instrument=``;
    #: ``None`` otherwise (the zero-overhead default).
    stats: KernelStats | None = None

    @property
    def n_replications(self) -> int:
        return int(self.makespan.size)

    @property
    def mean_makespan(self) -> float:
        return float(self.makespan.mean())

    @property
    def mean_wasted_hours(self) -> float:
        return float(self.wasted_hours.mean())

    @property
    def mean_vm_hours(self) -> float:
        return float(self.vm_hours.mean())

    @property
    def failure_fraction(self) -> float:
        """Fraction of replications with at least one gang abort."""
        return float(np.mean(self.n_job_failures > 0))

    def mean_cost(self, price_per_hour: float) -> float:
        """Mean billed cost of one cluster run at the given hourly price."""
        return self.mean_vm_hours * check_nonnegative(
            "price_per_hour", price_per_hour
        )


class _ClusterReplication:
    """One cluster run driven through the real :class:`ClusterManager`.

    This is the reference semantics for the batched kernel
    (:mod:`repro.sim.cluster_vectorized`): the FIFO gang scheduler, job
    executions, and callbacks are the production classes; only VM
    lifetimes come from the shared round protocol instead of a
    :class:`~repro.sim.cloud.CloudProvider`, so that both backends
    consume the generator identically.  Policy hooks mirror the batch
    service: Eq. 8 suitability filtering in the node selector, stall
    refreshes that terminate the oldest unsuitable idle VM for a fresh
    boot, hot-spare substitution of dead nodes, and a fixed-interval
    checkpoint planner.
    """

    def __init__(
        self,
        dist: LifetimeDistribution,
        jobs,
        config,
        uniforms: _RoundUniforms,
        replication: int,
        max_events: int,
        ckpt=None,
        obs=None,
    ):
        from repro.policies.scheduling import ModelReusePolicy, SchedulingDecision
        from repro.sim.cluster import ClusterManager, SimJob
        from repro.sim.events import EventLog, JobFailed
        from repro.sim.placement import make_allocator, resolve_pools
        from repro.sim.vm import SimVM

        self._SimVM = SimVM
        self._SimJob = SimJob
        self._JobFailed = JobFailed
        self._REUSE = SchedulingDecision.REUSE
        self.dist = dist
        self.jobs = jobs
        self.cfg = config
        self.uniforms = uniforms
        self.replication = replication
        self.max_events = max_events
        # Pool catalog: VM boots pick the first ranked pool with alive
        # headroom *before* drawing (so draw counts stay pool-agnostic),
        # and each pool carries its own lifetime law + reuse policy.
        # Cluster pools always boot instantly, so no boot-grace window
        # is needed here (decide(T, 0) is REUSE under both criteria).
        self.pools = resolve_pools(
            config.pools, dist=dist, n_slots=config.pool_size
        )
        self.rank = make_allocator(config.allocator).rank_for(self.pools)
        self.policies = (
            [
                ModelReusePolicy(p.dist, criterion=config.reuse_criterion)
                for p in self.pools
            ]
            if config.use_reuse_policy
            else None
        )
        self.sim = Simulator()
        self.log = EventLog()
        self.cluster = ClusterManager(
            self.sim,
            log=self.log,
            node_selector=self._select_nodes,
            checkpoint_planner=self._plan_checkpoints,
            checkpoint_cost=config.checkpoint_cost,
            backfill=config.backfill,
            allocator=config.allocator,
            pools=self.pools,
        )
        self.cluster.on_queue_stalled.append(self._on_stall)
        # Mirrored observability counters: the ClusterManager samples
        # queue depth at its insertion points; this oracle counts stall
        # terminations and tracks per-pool alive occupancy.
        self.obs = obs
        self.cluster.obs = obs
        self._alive_per_pool = [0] * len(self.pools)
        # Shared CheckpointPolicy in checkpoint="dp" mode (one DP table
        # across the whole sweep, like the batched walker), else None.
        self._ckpt = ckpt
        self.vms: list = []
        self._death_handles: dict[int, EventHandle] = {}
        self.draws = 0
        self.preemptions = 0
        self._stalled = False

    # -- policy hooks ---------------------------------------------------
    def _suitable(self, job, free):
        if self.policies is None:
            return list(free)
        T = max(job.remaining_hours, 1e-6)
        now = self.sim.now
        return [
            vm
            for vm in free
            if self.policies[vm.pool].decide(T, vm.age(now)) is self._REUSE
        ]

    def _select_nodes(self, job, free):
        suitable = self._suitable(job, free)
        if len(suitable) < job.width:
            return None
        return suitable[: job.width]

    def _plan_checkpoints(self, job, start_age):
        tau = self.cfg.checkpoint_interval
        if tau is not None:
            # Enough tau-segments to cover the attempt; JobExecution
            # clips the plan to the exact remaining hours.
            n_seg = int(np.ceil(job.remaining_hours / tau)) + 1
            return [tau] * n_seg
        if self._ckpt is None:
            return None
        # The controller's DP branch (checkpoint="dp"): plan the
        # remaining work at the gang's oldest selected VM age.
        remaining = job.remaining_hours
        if remaining < self.cfg.checkpoint_step:
            return None
        return list(self._ckpt.plan(remaining, start_age).segments)

    # -- VM lifecycle under the round protocol --------------------------
    def _pick_pool(self) -> int:
        """First ranked pool with alive headroom (the kernel's _boot_pool).

        Counted over *alive* registered nodes only: dead/terminated VMs
        are marked before their replacements boot on both backends, so
        the vacated slot is already free here.
        """
        if len(self.pools) == 1:
            return 0
        occ = [0] * len(self.pools)
        for vm in self.cluster.free_nodes():
            if vm.alive:
                occ[vm.pool] += 1
        for vm in self.cluster.busy_nodes():
            if vm.alive:
                occ[vm.pool] += 1
        for p in self.rank:
            if occ[p] < self.pools[p].size:
                return p
        raise RuntimeError("no pool headroom; pool invariant violated")

    def _boot(self):
        pool = self._pick_pool()  # deterministic, before the draw
        u = self.uniforms.value(self.replication, self.draws)
        self.draws += 1
        lifetime = float(self.pools[pool].dist.ppf(u))
        vm = self._SimVM(
            vm_id=len(self.vms),
            vm_type="cluster-mc",
            zone="mc",
            launch_time=self.sim.now,
            preemptible=True,
            hourly_price=0.0,
            pool=pool,
        )
        self.vms.append(vm)
        self._death_handles[vm.vm_id] = self.sim.schedule(
            lifetime, lambda v=vm: self._die(v)
        )
        if self.obs is not None:
            self._alive_per_pool[pool] += 1
            self.obs.gauge(f"pool.occupancy.{pool}").set(
                self._alive_per_pool[pool]
            )
        return vm

    def _die(self, vm) -> None:
        if not vm.alive:
            return
        vm.mark_preempted(self.sim.now)
        self.preemptions += 1
        if self.obs is not None:
            self._alive_per_pool[vm.pool] -= 1
        if self.cfg.hot_spare:
            # Substitute before the cluster reacts: the dead idle VM
            # leaves the pool and a fresh spare joins (giving the queue
            # first crack at it), then the abort path runs.
            if any(v.vm_id == vm.vm_id for v in self.cluster.free_nodes()):
                self.cluster.remove_node(vm)
            self.cluster.add_node(self._boot())
        for cb in list(vm.on_preempt):
            cb(vm, self.sim.now)

    # -- stall refresh (the service's policy-rejection path) -------------
    def _on_stall(self, job, n_free) -> None:
        self._stalled = True

    def _drain_stalls(self) -> None:
        """Refresh/boot one VM at a time while the queue head is stuck."""
        while self._stalled:
            self._stalled = False
            job = self.cluster.queue_head()
            if job is None:
                return
            free = self.cluster.free_nodes()
            suitable = self._suitable(job, free)
            if len(suitable) >= job.width:
                self.cluster.try_schedule()
                continue
            suitable_ids = {vm.vm_id for vm in suitable}
            unsuitable = [vm for vm in free if vm.vm_id not in suitable_ids]
            n_alive = len(free) + len(self.cluster.busy_nodes())
            n_empty = self.cfg.pool_size - n_alive
            if len(free) + n_empty < job.width:
                return  # wait for completions to release gang nodes
            if unsuitable:
                victim = unsuitable[0]  # oldest (launch, id) rejected VM
                self.cluster.remove_node(victim)
                handle = self._death_handles.pop(victim.vm_id, None)
                if handle is not None:
                    handle.cancel()
                victim.mark_terminated(self.sim.now)
                if self.obs is not None:
                    self.obs.inc("stall.terminations")
                    self._alive_per_pool[victim.pool] -= 1
            # add_node recurses into try_schedule, re-flagging the stall
            # if the head is still stuck.
            self.cluster.add_node(self._boot())

    # -- drive ------------------------------------------------------------
    def run(self):
        n_jobs = len(self.jobs)
        for _ in range(self.cfg.pool_size):
            self.cluster.add_node(self._boot())
        for k, gj in enumerate(self.jobs):
            self.cluster.submit(
                self._SimJob(job_id=k, work_hours=gj.work_hours, width=gj.width)
            )
        self._drain_stalls()
        while len(self.cluster.completed) < n_jobs:
            if self.sim.events_processed >= self.max_events:
                raise RuntimeError(
                    f"replication {self.replication} unfinished after "
                    f"{self.max_events} events; the bag cannot finish under "
                    "this lifetime law / configuration"
                )
            if not self.sim.step():
                raise RuntimeError(
                    "cluster replication drained before the bag finished"
                )
            self._drain_stalls()
        end = self.sim.now
        wasted = sum(ev.lost_hours for ev in self.log.of_type(self._JobFailed))
        failures = sum(job.failures for job in self.cluster.completed)
        vm_hours = sum(vm.age(end) for vm in self.vms)
        pool_hours = np.zeros(len(self.pools))
        for vm in self.vms:
            pool_hours[vm.pool] += vm.age(end)
        return (
            end,
            wasted,
            len(self.cluster.completed),
            failures,
            self.preemptions,
            vm_hours,
            pool_hours,
            self.sim.events_processed,
            self.draws,
        )


def _simulate_cluster_event(
    dist: LifetimeDistribution,
    jobs,
    config,
    *,
    n_replications: int,
    rng: np.random.Generator,
    max_events: int,
    obs=None,
) -> dict[str, np.ndarray | int]:
    from repro.policies.checkpointing import CheckpointPolicy
    from repro.sim.placement import resolve_pools

    uniforms = _RoundUniforms(rng, n_replications)
    n = int(n_replications)
    nP = len(resolve_pools(config.pools, dist=dist, n_slots=config.pool_size))
    # One shared policy (hence one cached DP table) across the sweep.
    ckpt = (
        CheckpointPolicy(
            dist, step=config.checkpoint_step, delta=config.checkpoint_cost
        )
        if config.checkpoint == "dp"
        else None
    )
    makespan = np.zeros(n)
    wasted = np.zeros(n)
    completed = np.zeros(n, dtype=np.int64)
    failures = np.zeros(n, dtype=np.int64)
    preemptions = np.zeros(n, dtype=np.int64)
    vm_hours = np.zeros(n)
    pool_hours = np.zeros((n, nP))
    events = np.zeros(n, dtype=np.int64)
    draws = np.zeros(n, dtype=np.int64)
    for i in range(n):
        rep = _ClusterReplication(
            dist, jobs, config, uniforms, i, max_events, ckpt=ckpt, obs=obs
        )
        (
            makespan[i],
            wasted[i],
            completed[i],
            failures[i],
            preemptions[i],
            vm_hours[i],
            pool_hours[i],
            events[i],
            draws[i],
        ) = rep.run()
        if obs is not None:
            # Engine mirror: real event-loop callbacks executed, summed
            # across the sweep (a backend-local diagnostic; the arena
            # event channels are the cross-backend contract).
            obs.inc("engine.callbacks", rep.sim.events_processed)
    raw = {
        "makespan": makespan,
        "wasted_hours": wasted,
        "completed_jobs": completed,
        "n_job_failures": failures,
        "n_preemptions": preemptions,
        "vm_hours": vm_hours,
        "pool_vm_hours": pool_hours,
        "n_events": events,
        "n_draws": draws,
        "n_rounds": int(events.max()) if n else 0,
    }
    if obs is not None:
        obs.gauge("rng.rows").set(uniforms._filled)
    return raw


def run_cluster_replications(
    dist: LifetimeDistribution,
    jobs,
    *,
    config=None,
    n_replications: int = 1000,
    seed: int | np.random.Generator | None = 0,
    backend: str = "vectorized",
    max_events: int = 1_000_000,
    workers: int = 1,
    capture: DrawCapture | None = None,
    instrument=None,
    **config_kwargs,
) -> ClusterOutcomes:
    """Simulate ``n_replications`` whole-cluster bag runs under ``dist``.

    Each replication is one Section 5 service scenario: the bag's gang
    jobs are submitted FIFO at ``t = 0`` to a cluster of
    ``config.pool_size`` preemptible VMs and run — through preemptions,
    Eq. 8 reuse refreshes, hot-spare substitution, and checkpoint
    restarts — until every job completes.  See
    :mod:`repro.sim.cluster_vectorized` for the cluster round protocol
    both backends share.

    Parameters
    ----------
    dist:
        Lifetime law of the pool VMs.
    jobs:
        The bag: a sequence of :class:`~repro.sim.cluster_vectorized.GangJob`
        (or ``(work_hours, width)`` tuples).
    config:
        A :class:`~repro.sim.cluster_vectorized.ClusterConfig`;
        alternatively pass its fields as keyword arguments
        (``pool_size=16, hot_spare=False, ...``).
    seed:
        Root seed (or generator) for the cluster round protocol;
        identical seeds give identical per-replication outcomes on both
        backends (within 1e-9 hours).
    backend:
        ``"vectorized"`` (default) or ``"event"`` — the event path
        drives the real :class:`~repro.sim.cluster.ClusterManager` per
        replication and is the semantics oracle.
    max_events:
        Safety cap on processed events per replication before declaring
        the bag unfinishable.
    workers:
        Shard the batch across this many worker processes under CRN
        shard pairing (see :func:`run_replications`); merged outcomes
        are byte-identical to ``workers=1``.  Incompatible with
        ``capture``.
    capture:
        Optional fresh :class:`DrawCapture`; records every consumed
        round row so the realized lifetime draws can be re-scored with
        draw-level pairing (the hindsight-oracle hook).
    instrument:
        Observability switch (see :func:`run_replications`); when on,
        ``.stats`` carries per-channel arena event counts, stall
        terminations, pool occupancy, and phase timings.  The event
        backend's channel counts are *derived* from the oracle's
        outputs, so comparing them against the vectorized kernel's
        direct counts independently checks the pick classification.

    Returns
    -------
    ClusterOutcomes
        Per-replication makespan / wasted hours / completion counts /
        preemption counts / VM hours.
    """
    from repro.sim.cluster_vectorized import (
        ClusterConfig,
        GangJob,
        simulate_cluster_vectorized,
    )

    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    if config is not None and config_kwargs:
        raise ValueError("pass either config or its fields as kwargs, not both")
    if config is None:
        config = ClusterConfig(**config_kwargs)
    bag = [j if isinstance(j, GangJob) else GangJob(*j) for j in jobs]
    if not bag:
        raise ValueError("jobs must be non-empty")
    widest = max(j.width for j in bag)
    if widest > config.pool_size:
        raise ValueError(
            f"job width {widest} exceeds pool_size {config.pool_size}"
        )
    if n_replications < 0:
        raise ValueError(f"n_replications must be >= 0, got {n_replications}")
    check_positive("max_events", max_events)
    workers = _check_workers(workers, capture)
    n = int(n_replications)
    robs = _RunObs(instrument, "cluster", backend)
    if workers > 1 and n > 1:
        root = (
            seed if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        args = dict(dist=dist, jobs=bag, config=config, max_events=int(max_events))
        if robs.on:
            args["instrument"] = True
        bounds = _shard_bounds(n, min(workers, n))
        robs.shards = tuple(bounds)
        payloads = [("cluster", backend, root, lo, hi, n, args) for lo, hi in bounds]
        with robs.timed("shards"):
            raws = _run_sharded(payloads, workers)
        robs.absorb(raws)
        with robs.timed("merge"):
            raw = _merge_raws(raws)
        return ClusterOutcomes(
            backend=backend,
            stats=_cluster_stats(robs, raw, backend, n, workers=workers),
            **raw,
        )
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    if capture is not None:
        capture._arm()
        rng = _RecordingRNG(rng, capture)
    if backend == "vectorized":
        with robs.timed("simulate:vectorized"):
            raw = simulate_cluster_vectorized(
                dist,
                bag,
                config,
                n_replications=int(n_replications),
                rng=rng,
                max_events=int(max_events),
                obs=robs.reg,
            )
    else:
        with robs.timed("simulate:event"):
            raw = _simulate_cluster_event(
                dist,
                bag,
                config,
                n_replications=int(n_replications),
                rng=rng,
                max_events=int(max_events),
                obs=robs.reg,
            )
    return ClusterOutcomes(
        backend=backend, stats=_cluster_stats(robs, raw, backend, n), **raw
    )


def _cluster_stats(robs, raw, backend: str, n: int, *, workers: int = 1):
    """Assemble cluster KernelStats; event channel counts are derived
    from the oracle's per-replication outputs (every arena event is a
    death or a segment completion), making the cross-backend stats
    comparison an independent check of the kernel's pick split."""
    if not robs.on:
        return None
    if backend == "event":
        death = int(raw["n_preemptions"].sum())
        channel_events = {
            "death": death,
            "comp": int(raw["n_events"].sum()) - death,
        }
    else:
        channel_events = None
    return robs.finish(
        n=n,
        n_rounds=int(raw["n_rounds"]),
        n_draws=int(raw["n_draws"].sum()),
        channel_events=channel_events,
        workers=workers,
    )


# ----------------------------------------------------------------------
# Service-scale sweeps: N full BatchComputingService runs
# ----------------------------------------------------------------------

class _BilledSweepMixin:
    """Billing arithmetic shared by the service- and tenant-scale
    outcome types: both expose ``vm_hours`` / ``master_hours`` arrays
    and an ``on_demand_baseline``, so the rate validation and the
    zero-spend convention (spend 0 with a positive baseline -> inf)
    live in exactly one place.
    """

    def total_cost(
        self, preemptible_rate: float, master_rate: float = 0.0
    ) -> np.ndarray:
        """Per-replication billed cost: workers + (optionally) the master."""
        check_nonnegative("preemptible_rate", preemptible_rate)
        check_nonnegative("master_rate", master_rate)
        return self.vm_hours * preemptible_rate + self.master_hours * master_rate

    def cost_reduction_factor(
        self,
        preemptible_rate: float,
        on_demand_rate: float,
        master_rate: float = 0.0,
    ) -> np.ndarray:
        """Per-replication Fig. 9a metric: baseline over billed cost."""
        check_positive("preemptible_rate", preemptible_rate)
        baseline = self.on_demand_baseline(on_demand_rate)
        spend = self.total_cost(preemptible_rate, master_rate)
        return np.where(spend > 0.0, baseline / np.where(spend > 0.0, spend, 1.0), np.inf)


@dataclass(frozen=True)
class ServiceOutcomes(_BilledSweepMixin):
    """Per-replication results of one :func:`run_service_replications` sweep.

    ``ServiceReport``-shaped arrays: everything
    :meth:`repro.service.controller.BatchComputingService.report`
    derives — cost-reduction factor, on-demand baseline, preemption
    count, makespan — is available per replication, with prices applied
    by the caller so one sweep scores any rate sheet.

    Attributes
    ----------
    makespan:
        Hours from submission (t = 0) to the bag's last completion.
    wasted_hours:
        Segment hours lost to gang preemptions, summed per replication.
    completed_jobs:
        Jobs finished (the bag size once a sweep terminates).
    n_job_failures:
        Gang aborts per replication.
    n_preemptions:
        Worker-VM deaths observed before the bag finished.
    vm_hours:
        Billable *worker* hours: every worker from boot to its death,
        termination (stall refresh or idle reap), or the makespan.
    master_hours:
        Billable master hours (= makespan under ``run_master``, else 0).
    n_events:
        Engine events processed (deaths + completions + boots + reaps);
        equal across backends by construction.
    n_draws:
        Lifetime uniforms consumed (one per worker boot event).
    n_rounds:
        Lockstep rounds the batch needed (= max of ``n_events``).
    total_work_hours:
        Ideal VM-hours of the bag (work x gang width, summed) — the
        on-demand baseline's work term.
    backend:
        Which backend produced the arrays.
    pool_vm_hours:
        Per-pool split of ``vm_hours``, shape ``(n, n_pools)`` — one
        column per catalog entry; ``pool_vm_hours @ prices`` gives each
        replication's heterogeneous-fleet bill.
    """

    makespan: np.ndarray
    wasted_hours: np.ndarray
    completed_jobs: np.ndarray
    n_job_failures: np.ndarray
    n_preemptions: np.ndarray
    vm_hours: np.ndarray
    master_hours: np.ndarray
    n_events: np.ndarray
    n_draws: np.ndarray
    n_rounds: int
    total_work_hours: float
    backend: str
    pool_vm_hours: np.ndarray | None = None
    #: Per-run diagnostics when the sweep ran with ``instrument=``;
    #: ``None`` otherwise (the zero-overhead default).
    stats: KernelStats | None = None

    @property
    def n_replications(self) -> int:
        return int(self.makespan.size)

    @property
    def mean_makespan(self) -> float:
        return float(self.makespan.mean())

    @property
    def mean_wasted_hours(self) -> float:
        return float(self.wasted_hours.mean())

    @property
    def mean_vm_hours(self) -> float:
        return float(self.vm_hours.mean())

    @property
    def failure_fraction(self) -> float:
        """Fraction of service runs with at least one gang abort."""
        return float(np.mean(self.n_job_failures > 0))

    def mean_cost(self, preemptible_rate: float, master_rate: float = 0.0) -> float:
        """Mean billed cost of one service run at the given rates."""
        if self.n_replications == 0:
            return 0.0
        return float(self.total_cost(preemptible_rate, master_rate).mean())

    def on_demand_baseline(self, on_demand_rate: float) -> float:
        """The conventional-deployment counterfactual (no master, no waste)."""
        return self.total_work_hours * check_nonnegative(
            "on_demand_rate", on_demand_rate
        )


class _RoundProtocolCloud:
    """CloudProvider-shaped shim drawing worker lifetimes from the table.

    The real :class:`~repro.sim.cloud.CloudProvider` samples lifetimes
    from per-VM named streams; for cross-backend sweeps the lifetimes
    must come from the shared round protocol instead, drawn at boot
    time in event order.  The master (non-preemptible) draws nothing
    and schedules nothing, exactly like the kernel.  No advance-warning
    events are scheduled: they would perturb the processed-event count
    without affecting the service's proactive policies.

    With a multi-pool catalog, the pool index the controller passes to
    :meth:`launch` routes the boot's round-protocol uniform through
    *that pool's* lifetime law — the pool is chosen deterministically
    before the draw, so draw counts match the kernel's exactly.
    """

    def __init__(
        self,
        sim: Simulator,
        dist: LifetimeDistribution,
        uniforms: _RoundUniforms,
        replication: int,
        pools=None,
        obs=None,
    ):
        from repro.sim.events import EventLog

        self.sim = sim
        self.dist = dist
        self.pools = pools
        self.uniforms = uniforms
        self.replication = replication
        self.log = EventLog()
        self.workers: list = []
        self.draws = 0
        self.n_preempted = 0
        self._next_id = 0
        self._handles: dict[int, EventHandle] = {}
        # Observability: per-pool alive-worker occupancy, sampled at
        # every boot (the vectorized kernels sample per round — the
        # peaks agree in spirit, not by contract; see docs).
        self.obs = obs
        self._alive_per_pool: dict[int, int] = {}

    def _occupancy(self, pool: int, delta: int) -> None:
        if self.obs is None:
            return
        level = self._alive_per_pool.get(pool, 0) + delta
        self._alive_per_pool[pool] = level
        if delta > 0:
            self.obs.gauge(f"pool.occupancy.{pool}").set(level)

    def launch(
        self, vm_type: str, zone: str = "mc", *, preemptible: bool = True, pool: int = 0
    ):
        from repro.sim.vm import SimVM

        vm = SimVM(
            vm_id=self._next_id,
            vm_type=vm_type,
            zone=zone,
            launch_time=self.sim.now,
            preemptible=preemptible,
            hourly_price=0.0,
            pool=int(pool),
        )
        self._next_id += 1
        if preemptible:
            u = self.uniforms.value(self.replication, self.draws)
            self.draws += 1
            dist = self.dist if self.pools is None else self.pools[vm.pool].dist
            lifetime = float(dist.ppf(u))
            self.workers.append(vm)
            self._handles[vm.vm_id] = self.sim.schedule(
                lifetime, lambda v=vm: self._die(v)
            )
            self._occupancy(vm.pool, +1)
        return vm

    def terminate(self, vm) -> None:
        if not vm.alive:
            return
        handle = self._handles.pop(vm.vm_id, None)
        if handle is not None:
            handle.cancel()
        vm.mark_terminated(self.sim.now)
        if vm.preemptible:
            self._occupancy(vm.pool, -1)

    def _die(self, vm) -> None:
        if not vm.alive:
            return
        self._handles.pop(vm.vm_id, None)
        vm.mark_preempted(self.sim.now)
        self.n_preempted += 1
        self._occupancy(vm.pool, -1)
        for cb in list(vm.on_preempt):
            cb(vm, self.sim.now)


def _oracle_service_config(config, vm_type: str, *, backfill: bool):
    """Map a batch/tenancy kernel config onto the live ``ServiceConfig``.

    The one place the event oracles translate kernel knobs into
    controller knobs — a field added to the mapping lands in every
    oracle at once instead of drifting between copies.
    """
    from repro.service.controller import ServiceConfig

    return ServiceConfig(
        vm_type=vm_type,
        zone="mc",
        max_vms=config.max_vms,
        use_reuse_policy=config.use_reuse_policy,
        use_checkpointing=config.checkpoint == "dp",
        checkpoint_cost=config.checkpoint_cost,
        checkpoint_step=config.checkpoint_step,
        checkpoint_interval=config.checkpoint_interval,
        hot_spare_hours=config.hot_spare_hours,
        provision_latency=config.provision_latency,
        run_master=config.run_master,
        backfill=backfill,
        max_attempts_per_job=config.max_attempts_per_job,
        livelock_threshold=config.livelock_threshold,
        pools=getattr(config, "pools", None),
        allocator=getattr(config, "allocator", "first_fit"),
    )


def _oracle_run_scalars(sim, cloud, cluster, *, run_master: bool, n_pools: int = 1):
    """The ServiceOutcomes-shaped scalars of one finished oracle run.

    ``vm.age`` caps at each worker's end time, so one end-of-run pass
    over the fleet yields both the total and the per-pool hour splits.
    """
    from repro.sim.events import JobFailed

    end = sim.now
    pool_hours = np.zeros(n_pools)
    for vm in cloud.workers:
        pool_hours[vm.pool] += vm.age(end)
    return (
        end,
        sum(ev.lost_hours for ev in cloud.log.of_type(JobFailed)),
        len(cluster.completed),
        sum(job.failures for job in cluster.completed),
        cloud.n_preempted,
        sum(vm.age(end) for vm in cloud.workers),
        pool_hours,
        end if run_master else 0.0,
        sim.events_processed,
        cloud.draws,
    )


class _ServiceReplication:
    """One service run driven through the real ``BatchComputingService``.

    The controller, cluster manager, bag estimator, hot-spare timers,
    and provisioning loop are the production classes; only the cloud is
    swapped for the round-protocol shim so both backends consume the
    generator identically.  This is the reference semantics for
    :mod:`repro.sim.service_vectorized`.
    """

    def __init__(
        self, dist, jobs, config, uniforms, replication, max_events, ckpt=None, obs=None
    ):
        # The oracle deliberately reaches down into the service layer —
        # it IS the service; the vectorized kernel stays sim-pure.
        from repro.service.controller import BatchComputingService

        self.sim = Simulator()
        self.jobs = jobs
        self.config = config
        self.max_events = int(max_events)
        service_config = _oracle_service_config(
            config, "service-mc", backfill=config.backfill
        )
        self.svc = BatchComputingService(
            self.sim,
            _RoundProtocolCloud(self.sim, dist, uniforms, replication, obs=obs),
            dist,
            service_config,
        )
        # Mirrored observability counters: the controller counts reaps,
        # stall terminations, boot-grace spares, and livelock streaks;
        # the cluster manager samples queue depth.
        self.svc.obs = obs
        self.svc.cluster.obs = obs
        # The controller resolved the pool catalog (defaults filled in);
        # hand it to the cloud shim so boots draw per-pool lifetimes.
        self.cloud = self.svc.cloud
        self.cloud.pools = self.svc.pools
        if ckpt is not None:
            # checkpoint="dp": share one CheckpointPolicy (hence one
            # cached DP table) across the sweep's replications.
            self.svc._ckpt = ckpt

    def run(self):
        from repro.service.api import BagRequest, JobRequest

        bag = BagRequest(
            jobs=[
                JobRequest(work_hours=j.work_hours, width=j.width) for j in self.jobs
            ],
            name="service-mc",
        )
        bid = self.svc.submit_bag(bag)
        # The estimate window is a per-bag knob; no completions have
        # landed during submission, so setting it here is exact.
        self.svc.bags[bid].window = self.config.estimate_window
        self.svc.run_until_bag_done(bid, max_events=self.max_events)
        return _oracle_run_scalars(
            self.sim,
            self.cloud,
            self.svc.cluster,
            run_master=self.config.run_master,
            n_pools=len(self.svc.pools),
        )


def _simulate_service_event(
    dist: LifetimeDistribution,
    jobs,
    config,
    *,
    n_replications: int,
    rng: np.random.Generator,
    max_events: int,
    obs=None,
) -> dict[str, np.ndarray | int]:
    from repro.policies.checkpointing import CheckpointPolicy
    from repro.sim.placement import resolve_pools

    uniforms = _RoundUniforms(rng, n_replications)
    n = int(n_replications)
    nP = len(
        resolve_pools(
            config.pools,
            dist=dist,
            n_slots=config.max_vms,
            provision_latency=config.provision_latency,
        )
    )
    # One shared policy (hence one cached DP table) across the sweep.
    ckpt = (
        CheckpointPolicy(
            dist, step=config.checkpoint_step, delta=config.checkpoint_cost
        )
        if config.checkpoint == "dp"
        else None
    )
    makespan = np.zeros(n)
    wasted = np.zeros(n)
    completed = np.zeros(n, dtype=np.int64)
    failures = np.zeros(n, dtype=np.int64)
    preemptions = np.zeros(n, dtype=np.int64)
    vm_hours = np.zeros(n)
    pool_hours = np.zeros((n, nP))
    master_hours = np.zeros(n)
    events = np.zeros(n, dtype=np.int64)
    draws = np.zeros(n, dtype=np.int64)
    for i in range(n):
        rep = _ServiceReplication(
            dist, jobs, config, uniforms, i, max_events, ckpt=ckpt, obs=obs
        )
        (
            makespan[i],
            wasted[i],
            completed[i],
            failures[i],
            preemptions[i],
            vm_hours[i],
            pool_hours[i],
            master_hours[i],
            events[i],
            draws[i],
        ) = rep.run()
        if obs is not None:
            # Engine mirror: real event-loop callbacks executed, summed
            # across the sweep (a backend-local diagnostic; the arena
            # event channels are the cross-backend contract).
            obs.inc("engine.callbacks", rep.sim.events_processed)
    raw = {
        "makespan": makespan,
        "wasted_hours": wasted,
        "completed_jobs": completed,
        "n_job_failures": failures,
        "n_preemptions": preemptions,
        "vm_hours": vm_hours,
        "pool_vm_hours": pool_hours,
        "master_hours": master_hours,
        "n_events": events,
        "n_draws": draws,
        "n_rounds": int(events.max()) if n else 0,
    }
    if obs is not None:
        obs.gauge("rng.rows").set(uniforms._filled)
    return raw


def run_service_replications(
    dist: LifetimeDistribution,
    jobs,
    *,
    config=None,
    n_replications: int = 1000,
    seed: int | np.random.Generator | None = 0,
    backend: str = "vectorized",
    max_events: int = 1_000_000,
    workers: int = 1,
    capture: DrawCapture | None = None,
    instrument=None,
    **config_kwargs,
) -> ServiceOutcomes:
    """Simulate ``n_replications`` full batch-service runs under ``dist``.

    Each replication is one end-to-end Section 5 service run: the bag
    is submitted at t = 0 to a *cold* service (no workers yet), which
    provisions its preemptible fleet on demand with ``provision_latency``
    boot delay, filters placements through the Eq. 8 reuse policy on
    the evolving bag runtime estimate, retains idle workers as hot
    spares for ``hot_spare_hours``, bills a non-preemptible master for
    the makespan, and runs until every job completes.  See
    :mod:`repro.sim.service_vectorized` for the service round protocol
    both backends share.

    Parameters
    ----------
    dist:
        Lifetime law of the worker VMs.
    jobs:
        The bag: a sequence of
        :class:`~repro.sim.cluster_vectorized.GangJob` (or
        ``(work_hours, width)`` tuples).
    config:
        A :class:`~repro.sim.service_vectorized.ServiceBatchConfig`,
        *or* a :class:`repro.service.controller.ServiceConfig` (its
        policy-content fields are converted; DP checkpointing —
        ``use_checkpointing`` without ``checkpoint_interval`` — maps to
        ``checkpoint="dp"`` on both backends).  Alternatively pass the
        batch-config fields as keyword arguments
        (``max_vms=16, backfill=True, ...``).
    seed:
        Root seed (or generator) for the service round protocol;
        identical seeds give identical per-replication outcomes on both
        backends (within 1e-9 hours).
    backend:
        ``"vectorized"`` (default) or ``"event"`` — the event path
        drives the real
        :class:`~repro.service.controller.BatchComputingService` per
        replication and is the semantics oracle.
    max_events:
        Safety cap on processed events per replication.
    workers:
        Shard the batch across this many worker processes under CRN
        shard pairing (see :func:`run_replications`); merged outcomes
        are byte-identical to ``workers=1``.  Incompatible with
        ``capture``.
    capture:
        Optional fresh :class:`DrawCapture`; records every consumed
        round row so the realized lifetime draws can be re-scored with
        draw-level pairing (the hindsight-oracle hook).
    instrument:
        Observability switch (see :func:`run_replications`); when on,
        ``.stats`` carries per-channel arena event counts (death /
        comp / boot / reap), stall terminations, boot-grace
        activations, livelock near-miss peaks, queue depth, pool
        occupancy, and phase timings.

    Returns
    -------
    ServiceOutcomes
        ``ServiceReport``-shaped per-replication arrays (makespan,
        waste, preemptions, worker/master hours) with cost and
        cost-reduction-factor helpers.
    """
    from repro.sim.cluster_vectorized import GangJob
    from repro.sim.service_vectorized import (
        ServiceBatchConfig,
        simulate_service_vectorized,
    )

    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    if config is not None and config_kwargs:
        raise ValueError("pass either config or its fields as kwargs, not both")
    if config is None:
        config = ServiceBatchConfig(**config_kwargs)
    elif hasattr(config, "vm_type"):  # a service-layer ServiceConfig
        config = ServiceBatchConfig.from_service_config(config)
    bag = [j if isinstance(j, GangJob) else GangJob(*j) for j in jobs]
    if not bag:
        raise ValueError("jobs must be non-empty")
    widest = max(j.width for j in bag)
    if widest > config.max_vms:
        raise ValueError(f"job width {widest} exceeds max_vms {config.max_vms}")
    if n_replications < 0:
        raise ValueError(f"n_replications must be >= 0, got {n_replications}")
    check_positive("max_events", max_events)
    workers = _check_workers(workers, capture)
    n = int(n_replications)
    total_work = float(sum(j.work_hours * j.width for j in bag))
    robs = _RunObs(instrument, "service", backend)
    if workers > 1 and n > 1:
        root = (
            seed if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        args = dict(dist=dist, jobs=bag, config=config, max_events=int(max_events))
        if robs.on:
            args["instrument"] = True
        bounds = _shard_bounds(n, min(workers, n))
        robs.shards = tuple(bounds)
        payloads = [("service", backend, root, lo, hi, n, args) for lo, hi in bounds]
        with robs.timed("shards"):
            raws = _run_sharded(payloads, workers)
        robs.absorb(raws)
        with robs.timed("merge"):
            raw = _merge_raws(raws)
        return ServiceOutcomes(
            backend=backend,
            total_work_hours=total_work,
            stats=_service_stats(robs, raw, backend, n, workers=workers),
            **raw,
        )
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    if capture is not None:
        capture._arm()
        rng = _RecordingRNG(rng, capture)
    if backend == "vectorized":
        with robs.timed("simulate:vectorized"):
            raw = simulate_service_vectorized(
                dist,
                bag,
                config,
                n_replications=int(n_replications),
                rng=rng,
                max_events=int(max_events),
                obs=robs.reg,
            )
    else:
        with robs.timed("simulate:event"):
            raw = _simulate_service_event(
                dist,
                bag,
                config,
                n_replications=int(n_replications),
                rng=rng,
                max_events=int(max_events),
                obs=robs.reg,
            )
    return ServiceOutcomes(
        backend=backend,
        total_work_hours=total_work,
        stats=_service_stats(robs, raw, backend, n),
        **raw,
    )


def _service_stats(robs, raw, backend: str, n: int, *, workers: int = 1, arr: int = 0):
    """Assemble service/tenancy KernelStats.  Event channel counts are
    derived from oracle outputs plus the controller's reap counter:
    every worker boot event draws exactly one lifetime (masters and
    t=0 launches are not events), deaths are the cloud's preemption
    tally, arrivals are one event per submitted bag, and completions
    are the remainder — so comparing against the vectorized kernel's
    direct pick counts independently checks the classification."""
    if not robs.on:
        return None
    if backend == "event":
        death = int(raw["n_preemptions"].sum())
        boot = int(raw["n_draws"].sum())
        reap = int(robs.reg.counter("events.reap").value)
        channel_events = {
            "death": death,
            "comp": int(raw["n_events"].sum()) - death - boot - reap - arr,
            "boot": boot,
            "reap": reap,
        }
        if arr:
            channel_events["arr"] = arr
    else:
        channel_events = None
    return robs.finish(
        n=n,
        n_rounds=int(raw["n_rounds"]),
        n_draws=int(raw["n_draws"].sum()),
        channel_events=channel_events,
        workers=workers,
    )


# ----------------------------------------------------------------------
# Tenant-scale sweeps: N multi-tenant traffic runs
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TenantOutcomes(_BilledSweepMixin):
    """Per-replication results of one :func:`run_tenant_replications` sweep.

    Beyond the :class:`ServiceOutcomes`-style scalars, per-job timing
    arrays (aligned with the flattened traffic order) expose the SLO
    surface: waits, turnarounds, and per-tenant aggregations are all
    derived views over equivalence-pinned data.  See
    :mod:`repro.traffic.metrics` for the report layer.

    Attributes
    ----------
    makespan:
        Hours from t = 0 to the last processed traffic event per
        replication (final completion, or a trailing arrival).
    wasted_hours, n_job_failures, n_preemptions, vm_hours, master_hours,
    n_events, n_draws, n_rounds, backend:
        As in :class:`ServiceOutcomes`.
    completed_jobs:
        Jobs finished per replication (equals that replication's
        admitted count once the sweep terminates).
    admitted:
        Per-(replication, job) admission outcome, shape ``(n, J)``;
        rejected bags leave their jobs ``False``.
    start_times, finish_times:
        First gang start / completion hour per (replication, job);
        ``nan`` where not admitted.
    job_tenant, job_arrival, job_work, job_width:
        Static per-job traffic metadata, shape ``(J,)``.
    n_tenants:
        Tenant count of the traffic.
    pool_vm_hours:
        Per-pool split of ``vm_hours``, shape ``(n, n_pools)`` — one
        column per catalog entry; ``pool_vm_hours @ prices`` gives each
        replication's heterogeneous-fleet bill.
    """

    makespan: np.ndarray
    wasted_hours: np.ndarray
    completed_jobs: np.ndarray
    n_job_failures: np.ndarray
    n_preemptions: np.ndarray
    vm_hours: np.ndarray
    master_hours: np.ndarray
    n_events: np.ndarray
    n_draws: np.ndarray
    admitted: np.ndarray
    start_times: np.ndarray
    finish_times: np.ndarray
    job_tenant: np.ndarray
    job_arrival: np.ndarray
    job_work: np.ndarray
    job_width: np.ndarray
    n_tenants: int
    n_rounds: int
    backend: str
    pool_vm_hours: np.ndarray | None = None
    #: Per-run diagnostics when the sweep ran with ``instrument=``;
    #: ``None`` otherwise (the zero-overhead default).
    stats: KernelStats | None = None

    @property
    def n_replications(self) -> int:
        return int(self.makespan.size)

    @property
    def n_jobs(self) -> int:
        return int(self.job_tenant.size)

    @property
    def mean_makespan(self) -> float:
        return float(self.makespan.mean())

    @property
    def wait_times(self) -> np.ndarray:
        """Arrival-to-start queueing delay per (replication, job); nan
        where the job was rejected."""
        return self.start_times - self.job_arrival[None, :]

    @property
    def turnaround_times(self) -> np.ndarray:
        """Arrival-to-completion response time per (replication, job)."""
        return self.finish_times - self.job_arrival[None, :]

    @property
    def mean_wait_hours(self) -> float:
        """Pooled mean queueing delay over all admitted jobs (nan when
        nothing was admitted)."""
        waits = self.wait_times
        return float(np.nanmean(waits)) if np.isfinite(waits).any() else float("nan")

    @property
    def admitted_fraction(self) -> np.ndarray:
        """Fraction of submitted jobs admitted, per replication."""
        if self.n_jobs == 0:
            return np.ones(self.n_replications)
        return self.admitted.mean(axis=1)

    def on_demand_baseline(self, on_demand_rate: float) -> np.ndarray:
        """Per-replication conventional-deployment counterfactual.

        Unlike the single-bag sweeps the baseline varies per
        replication: only *admitted* work would have run on demand.
        """
        check_nonnegative("on_demand_rate", on_demand_rate)
        ideal = self.job_work * self.job_width
        return (self.admitted * ideal[None, :]).sum(axis=1) * on_demand_rate


class _TenantReplication:
    """One traffic run driven through the real ``MultiTenantService``.

    The front end, controller, cluster manager, and keyed queue are the
    production classes; only the cloud is swapped for the
    round-protocol shim so both backends consume the generator
    identically.  This is the reference semantics for
    :mod:`repro.sim.tenancy_vectorized`.
    """

    def __init__(
        self, dist, traffic, n_tenants, config, uniforms, replication, max_events,
        ckpt=None, obs=None,
    ):
        from repro.traffic.multitenant import MultiTenantService

        self.sim = Simulator()
        self.cloud = _RoundProtocolCloud(self.sim, dist, uniforms, replication, obs=obs)
        self.max_events = int(max_events)
        service_config = _oracle_service_config(config, "tenant-mc", backfill=False)
        self.mts = MultiTenantService(
            self.sim,
            self.cloud,
            dist,
            service_config,
            n_tenants=n_tenants,
            scheduling=config.scheduling,
            tenant_weights=config.tenant_weights,
            admission_cap=config.admission_cap,
            elastic_vms_per_bag=config.elastic_vms_per_bag,
            estimate_window=config.estimate_window,
        )
        # Mirrored observability counters on the underlying controller
        # and cluster manager (reaps, stalls, grace, queue depth).
        self.mts.service.obs = obs
        self.mts.service.cluster.obs = obs
        # Per-pool lifetime laws for the cloud shim, resolved by the
        # underlying controller (defaults filled in).
        self.cloud.pools = self.mts.service.pools
        if ckpt is not None:
            # checkpoint="dp": share one CheckpointPolicy (hence one
            # cached DP table) across the sweep's replications.
            self.mts.service._ckpt = ckpt
        self.mts.submit_traffic(traffic)

    def run(self):
        # Drive through the front end's own entry point: one copy of
        # the finished/step/cap loop, exercised by its own tests too.
        self.mts.run(max_events=self.max_events)
        records = self.mts.records
        J = len(records)
        admitted = np.fromiter((r.admitted for r in records), dtype=bool, count=J)
        starts = np.full(J, np.nan)
        finishes = np.full(J, np.nan)
        for k, rec in enumerate(records):
            if rec.admitted and rec.job is not None:
                starts[k] = rec.job.start_time
                finishes[k] = rec.job.finish_time
        scalars = _oracle_run_scalars(
            self.sim,
            self.cloud,
            self.mts.service.cluster,
            run_master=self.mts.service.config.run_master,
            n_pools=len(self.mts.service.pools),
        )
        return (*scalars, admitted, starts, finishes)


def _simulate_tenancy_event(
    dist: LifetimeDistribution,
    traffic,
    n_tenants: int,
    config,
    *,
    n_replications: int,
    rng: np.random.Generator,
    max_events: int,
    obs=None,
) -> dict[str, np.ndarray | int]:
    from repro.policies.checkpointing import CheckpointPolicy
    from repro.sim.placement import resolve_pools

    uniforms = _RoundUniforms(rng, n_replications)
    n = int(n_replications)
    nP = len(
        resolve_pools(
            config.pools,
            dist=dist,
            n_slots=config.max_vms,
            provision_latency=config.provision_latency,
        )
    )
    # One shared policy (hence one cached DP table) across the sweep.
    ckpt = (
        CheckpointPolicy(
            dist, step=config.checkpoint_step, delta=config.checkpoint_cost
        )
        if config.checkpoint == "dp"
        else None
    )
    J = sum(len(s.jobs) for s in traffic)
    makespan = np.zeros(n)
    wasted = np.zeros(n)
    completed = np.zeros(n, dtype=np.int64)
    failures = np.zeros(n, dtype=np.int64)
    preemptions = np.zeros(n, dtype=np.int64)
    vm_hours = np.zeros(n)
    pool_hours = np.zeros((n, nP))
    master_hours = np.zeros(n)
    events = np.zeros(n, dtype=np.int64)
    draws = np.zeros(n, dtype=np.int64)
    admitted = np.zeros((n, J), dtype=bool)
    starts = np.full((n, J), np.nan)
    finishes = np.full((n, J), np.nan)
    for i in range(n):
        rep = _TenantReplication(
            dist, traffic, n_tenants, config, uniforms, i, max_events, ckpt=ckpt,
            obs=obs,
        )
        (
            makespan[i],
            wasted[i],
            completed[i],
            failures[i],
            preemptions[i],
            vm_hours[i],
            pool_hours[i],
            master_hours[i],
            events[i],
            draws[i],
            admitted[i],
            starts[i],
            finishes[i],
        ) = rep.run()
        if obs is not None:
            # Engine mirror: real event-loop callbacks executed, summed
            # across the sweep (a backend-local diagnostic; the arena
            # event channels are the cross-backend contract).
            obs.inc("engine.callbacks", rep.sim.events_processed)
    raw = {
        "makespan": makespan,
        "wasted_hours": wasted,
        "completed_jobs": completed,
        "n_job_failures": failures,
        "n_preemptions": preemptions,
        "vm_hours": vm_hours,
        "pool_vm_hours": pool_hours,
        "master_hours": master_hours,
        "n_events": events,
        "n_draws": draws,
        "admitted": admitted,
        "start_times": starts,
        "finish_times": finishes,
        "n_rounds": int(events.max()) if n else 0,
    }
    if obs is not None:
        obs.gauge("rng.rows").set(uniforms._filled)
    return raw


def run_tenant_replications(
    dist: LifetimeDistribution,
    traffic,
    *,
    config=None,
    n_tenants: int | None = None,
    n_replications: int = 1000,
    seed: int | np.random.Generator | None = 0,
    backend: str = "vectorized",
    max_events: int = 1_000_000,
    chunk_size: int | None = None,
    workers: int = 1,
    capture: DrawCapture | None = None,
    instrument=None,
    **config_kwargs,
) -> TenantOutcomes:
    """Simulate ``n_replications`` multi-tenant traffic runs under ``dist``.

    Each replication serves the *same* traffic — a sequence of
    :class:`~repro.sim.tenancy_vectorized.BagSubmission` s (or
    ``(tenant, time, jobs)`` triples), typically sampled once by
    :func:`repro.traffic.arrivals.sample_traffic` — on one shared
    preemptible fleet through the full controller semantics (deficit
    provisioning with boot latency, per-bag Eq. 8 estimates, hot-spare
    retention, master billing) plus the tenancy layer: inter-tenant
    scheduling policy, per-tenant admission, elastic fleet sizing.
    Replications differ only in VM-lifetime draws, consumed under the
    tenancy round protocol shared by both backends (see
    :mod:`repro.sim.tenancy_vectorized`).

    Parameters
    ----------
    dist:
        Lifetime law of the worker VMs.
    traffic:
        The scenario input; normalised (stably time-sorted) before use.
    config:
        A :class:`~repro.sim.tenancy_vectorized.TenancyConfig`;
        alternatively pass its fields as keyword arguments
        (``max_vms=16, scheduling="fair", ...``).
    n_tenants:
        Tenant count; inferred from the traffic when omitted.
    seed:
        Root seed (or generator) for the tenancy round protocol;
        identical seeds give identical per-replication outcomes on both
        backends (within 1e-9 hours).
    backend:
        ``"vectorized"`` (default) or ``"event"`` — the event path
        drives the real
        :class:`~repro.traffic.multitenant.MultiTenantService` per
        replication and is the semantics oracle.
    max_events:
        Safety cap on processed events per replication.
    chunk_size:
        Stream the batch in chunks of at most this many replications,
        reducing the results chunk by chunk.  Peak memory of the
        batched kernel scales with ``chunk_n x (K x estimate_window +
        3 x n_jobs + ...)``, so chunking is what lets tens of
        thousands of traced jobs run at production replication counts.
        Chunk 0 consumes the root generator; chunk ``k > 0`` consumes
        child ``k - 1`` of ``root.spawn(n_chunks - 1)``.  Each chunk's
        stream is therefore a pure function of ``(seed, chunk_size, k)``
        — independent of how many rounds earlier chunks ran — so any
        chunk is reproducible in isolation, results are deterministic
        for a fixed ``(seed, chunk_size)``, and cross-backend
        equivalence holds at *any* chunk size.  Draws (hence outcomes)
        still differ between chunk sizes, because the round protocol
        materialises per-round uniform rows chunk-wide; a chunk
        covering the whole batch is byte-identical to no chunking.
        ``None`` (default) runs the whole batch as one chunk.
    workers:
        Shard each chunk across this many worker processes under CRN
        shard pairing (see :func:`run_replications`): shards replay the
        chunk's generator, draw chunk-wide rows, and consume only their
        own columns.  Merged outcomes are byte-identical to
        ``workers=1`` at the same ``chunk_size``, and peak memory per
        worker stays bounded by its chunk shard.  Incompatible with
        ``capture``.
    capture:
        Optional fresh :class:`DrawCapture`; records every consumed
        round row so the realized lifetime draws can be re-scored with
        draw-level pairing (the hindsight-oracle hook).  Incompatible
        with ``chunk_size``: chunks materialise rows of differing
        widths, which no longer form one round table.
    instrument:
        Observability switch (see :func:`run_replications`); when on,
        ``.stats`` carries the five tenancy channels (death / comp /
        boot / reap / arr), chunk layout, and phase timings, and the
        bundle's ``progress`` callback fires after each streamed chunk
        with ``(done, total, elapsed_s, eta_s)``.

    Returns
    -------
    TenantOutcomes
        Per-replication scalars plus per-(replication, job) admission
        and timing arrays for the SLO metrics layer.
    """
    from repro.sim.tenancy_vectorized import (
        TenancyConfig,
        normalize_traffic,
        simulate_tenancy_vectorized,
    )

    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    if config is not None and config_kwargs:
        raise ValueError("pass either config or its fields as kwargs, not both")
    if config is None:
        config = TenancyConfig(**config_kwargs)
    traffic = normalize_traffic(traffic)
    if not traffic:
        raise ValueError("traffic must be non-empty")
    inferred = max(s.tenant for s in traffic) + 1
    T = inferred if n_tenants is None else int(n_tenants)
    if T < inferred:
        raise ValueError(
            f"n_tenants={T} but the traffic references tenant {inferred - 1}"
        )
    if config.tenant_weights is not None and len(config.tenant_weights) < T:
        raise ValueError("tenant_weights must cover every tenant in the traffic")
    widest = max(j.width for s in traffic for j in s.jobs)
    if widest > config.max_vms:
        raise ValueError(f"job width {widest} exceeds max_vms {config.max_vms}")
    if config.elastic_vms_per_bag is not None and config.elastic_vms_per_bag < widest:
        raise ValueError(
            f"elastic_vms_per_bag {config.elastic_vms_per_bag} cannot cover "
            f"the widest job ({widest}); a lone active bag would deadlock"
        )
    if n_replications < 0:
        raise ValueError(f"n_replications must be >= 0, got {n_replications}")
    check_positive("max_events", max_events)
    if chunk_size is not None:
        check_positive("chunk_size", chunk_size)
        if capture is not None:
            raise ValueError(
                "capture is incompatible with chunk_size: chunks consume "
                "rows of differing widths, which no longer form one round "
                "table"
            )
    workers = _check_workers(workers, capture)
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    if capture is not None:
        capture._arm()
        rng = _RecordingRNG(rng, capture)
    simulate = (
        simulate_tenancy_vectorized
        if backend == "vectorized"
        else _simulate_tenancy_event
    )
    n = int(n_replications)
    if chunk_size is None or n <= chunk_size:
        sizes = [n]
    else:
        sizes = [chunk_size] * (n // chunk_size)
        if n % chunk_size:
            sizes.append(n % chunk_size)
    # Chunk 0 keeps the root generator (so a covering chunk is the
    # unchunked run, byte for byte); later chunks get spawned children,
    # making every chunk's stream independent of how many rounds its
    # predecessors ran — the invariant that lets chunks be recomputed
    # in isolation and sharded across workers.
    if len(sizes) == 1:
        chunk_rngs = [rng]
    else:
        chunk_rngs = [rng, *rng.spawn(len(sizes) - 1)]
    robs = _RunObs(instrument, "tenancy", backend)
    robs.chunk_sizes = tuple(sizes)
    if workers > 1 and n > 1:
        args = dict(
            dist=dist,
            traffic=traffic,
            n_tenants=T,
            config=config,
            max_events=int(max_events),
        )
        if robs.on:
            args["instrument"] = True
        payloads = [
            ("tenancy", backend, chunk_rngs[k], lo, hi, size, args)
            for k, size in enumerate(sizes)
            for lo, hi in _shard_bounds(size, min(workers, size))
        ]
        robs.shards = tuple((p[3], p[4]) for p in payloads)
        with robs.timed("shards"):
            raws = _run_sharded(payloads, workers)
        robs.absorb(raws)
        robs.progress(n, n)
    else:
        # Chunks run sequentially; each builds its own chunk-wide kernel
        # (bounded peak memory) and the raw per-replication arrays are
        # reduced by concatenation.  With instrumentation on, each
        # chunk is timed and the progress callback fires as it lands.
        raws = []
        done = 0
        for k, size in enumerate(sizes):
            with robs.timed(f"chunk[{k}]" if len(sizes) > 1 else "simulate"):
                raws.append(
                    simulate(
                        dist,
                        traffic,
                        T,
                        config,
                        n_replications=size,
                        rng=chunk_rngs[k],
                        max_events=int(max_events),
                        obs=robs.reg,
                    )
                )
            done += size
            robs.progress(done, n)
    with robs.timed("merge"):
        raw = _merge_raws(raws)
    job_tenant = np.asarray(
        [s.tenant for s in traffic for _ in s.jobs], dtype=np.int64
    )
    job_arrival = np.asarray(
        [s.time for s in traffic for _ in s.jobs], dtype=float
    )
    job_work = np.asarray(
        [j.work_hours for s in traffic for j in s.jobs], dtype=float
    )
    job_width = np.asarray(
        [j.width for s in traffic for j in s.jobs], dtype=np.int64
    )
    return TenantOutcomes(
        backend=backend,
        n_tenants=T,
        job_tenant=job_tenant,
        job_arrival=job_arrival,
        job_work=job_work,
        job_width=job_width,
        stats=_service_stats(
            robs, raw, backend, n, workers=workers, arr=n * len(traffic)
        ),
        **raw,
    )

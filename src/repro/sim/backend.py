"""Backend selection for replication-heavy Monte-Carlo sweeps.

Two interchangeable backends simulate N independent (lifetime,
checkpoint-plan) replications:

``"event"``
    The reference implementation: one :class:`repro.sim.engine.Simulator`
    per replication, with segment completions and preemptions as real
    scheduled events (cancellation included).  Exact but Python-speed;
    it is also the semantics oracle for anything that genuinely needs
    event interleaving (gang scheduling, the batch service).

``"vectorized"``
    The batched NumPy kernel of :mod:`repro.sim.vectorized`: all
    replications advance together as arrays, rounds touch only the
    still-unfinished ones.  10-100x faster at 10k replications.

Determinism contract
--------------------
Both backends consume uniforms through the same *round protocol*: round
``r`` is one ``rng.random(n)`` row and replication ``i``'s ``r``-th VM
lifetime is ``ppf(...)`` of column ``i`` (the first VM conditioned on
survival to ``start_age``).  For an identical seed, distribution, and
configuration the two backends therefore produce identical
per-replication outcomes up to float associativity (< 1e-9 hours); the
cross-backend equivalence suite pins this down.  Note the generator is
advanced by whole rounds, so the *number* of values consumed depends on
the slowest replication — do not interleave other draws from the same
generator and expect stability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.distributions.base import LifetimeDistribution
from repro.sim.engine import EventHandle, Simulator
from repro.sim.vectorized import conditional_quantiles, simulate_plan_vectorized
from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["ReplicationOutcomes", "run_replications", "BACKENDS"]

#: Valid values for the ``backend`` argument.
BACKENDS = ("event", "vectorized")


@dataclass(frozen=True)
class ReplicationOutcomes:
    """Per-replication results of one :func:`run_replications` sweep.

    Attributes
    ----------
    makespan:
        Wall-clock hours to completion (work + checkpoint writes +
        recomputation + restart latency), shape ``(n,)``.
    wasted_hours:
        Hours lost past the last durable checkpoint, summed over all
        preemptions, shape ``(n,)``.
    completed_work:
        Durably saved work hours; equals the job length for every
        replication once the sweep terminates, shape ``(n,)``.
    n_restarts:
        Preemption count per replication, shape ``(n,)``.
    n_rounds:
        VM generations the batch needed (= 1 + max restarts).
    backend:
        Which backend produced the arrays.
    """

    makespan: np.ndarray
    wasted_hours: np.ndarray
    completed_work: np.ndarray
    n_restarts: np.ndarray
    n_rounds: int
    backend: str

    @property
    def n_replications(self) -> int:
        return int(self.makespan.size)

    @property
    def mean_makespan(self) -> float:
        return float(self.makespan.mean())

    @property
    def mean_wasted_hours(self) -> float:
        return float(self.wasted_hours.mean())

    @property
    def failure_fraction(self) -> float:
        """Fraction of replications preempted at least once."""
        return float(np.mean(self.n_restarts > 0))

    def mean_overhead_fraction(self, job_length: float) -> float:
        """``(E[makespan] - J) / J`` — the Fig. 8 y-axis (as a fraction)."""
        J = check_positive("job_length", job_length)
        return (self.mean_makespan - J) / J

    def total_cost(self, price_per_hour: float) -> float:
        """Summed VM-hours billed across replications times the hourly price."""
        return float(self.makespan.sum()) * check_nonnegative(
            "price_per_hour", price_per_hour
        )


class _RoundUniforms:
    """Lazily materialised round-protocol uniforms for the event backend.

    Rounds are generated in order, each as one ``rng.random(n)`` row, so
    the generator is consumed exactly as the vectorized kernel consumes
    it; replication ``i`` reads column ``i`` of each row it needs.
    """

    def __init__(self, rng: np.random.Generator, n: int):
        self._rng = rng
        self._n = n
        self._rows: list[np.ndarray] = []

    def value(self, replication: int, round_index: int) -> float:
        while len(self._rows) <= round_index:
            self._rows.append(self._rng.random(self._n))
        return float(self._rows[round_index][replication])


class _EventReplication:
    """One replication driven through the discrete-event engine.

    Each segment schedules its completion event; when the current VM dies
    before the segment's end, a preemption event is scheduled too and the
    loser is cancelled — exercising the engine's cancellation path the
    way the full cluster simulation does.
    """

    def __init__(
        self,
        dist: LifetimeDistribution,
        segments: np.ndarray,
        durations: np.ndarray,
        cdf_at_start: float,
        start_age: float,
        restart_latency: float,
        uniforms: _RoundUniforms,
        replication: int,
        max_rounds: int,
    ):
        self.sim = Simulator()
        self.dist = dist
        self.segments = segments
        self.durations = durations
        self.cdf_at_start = cdf_at_start
        self.start_age = start_age
        self.restart_latency = restart_latency
        self.uniforms = uniforms
        self.replication = replication
        self.max_rounds = max_rounds
        self.wasted = 0.0
        self.completed = 0.0
        self.restarts = 0
        self.rounds = 0
        self.k = 0  # next segment to (re)run
        self.vm_age = 0.0
        self.death_age = 0.0
        self.segment_start = 0.0
        self.completion_handle: EventHandle | None = None
        self.preempt_handle: EventHandle | None = None

    def run(self) -> tuple[float, float, float, int, int]:
        self._acquire_vm()
        self.sim.run()
        return (self.sim.now, self.wasted, self.completed, self.restarts, self.rounds)

    def _acquire_vm(self) -> None:
        if self.rounds >= self.max_rounds:
            raise RuntimeError(
                f"replication {self.replication} unfinished after "
                f"{self.max_rounds} rounds; schedule cannot finish under "
                "this lifetime law"
            )
        u = self.uniforms.value(self.replication, self.rounds)
        if self.rounds == 0:
            q = conditional_quantiles(u, self.cdf_at_start)
            self.vm_age = self.start_age
        else:
            q = u
            self.vm_age = 0.0
        self.death_age = float(self.dist.ppf(q))
        self.rounds += 1
        self._launch_segment()

    def _launch_segment(self) -> None:
        w = float(self.durations[self.k])
        self.segment_start = self.sim.now
        self.completion_handle = self.sim.schedule(w, self._segment_done)
        if self.death_age < self.vm_age + w:
            # Dies strictly inside the segment; at an exact boundary the
            # segment completes (ties favour completion in both backends).
            self.preempt_handle = self.sim.schedule(
                max(self.death_age - self.vm_age, 0.0), self._preempted
            )
        else:
            self.preempt_handle = None

    def _segment_done(self) -> None:
        if self.preempt_handle is not None:
            self.preempt_handle.cancel()
            self.preempt_handle = None
        self.completed += float(self.segments[self.k])
        self.vm_age += float(self.durations[self.k])
        self.k += 1
        if self.k < self.segments.size:
            self._launch_segment()

    def _preempted(self) -> None:
        if self.completion_handle is not None:
            self.completion_handle.cancel()
            self.completion_handle = None
        self.wasted += self.sim.now - self.segment_start
        self.restarts += 1
        if self.restart_latency > 0.0:
            self.sim.schedule(self.restart_latency, self._acquire_vm)
        else:
            self._acquire_vm()


def _simulate_plan_event(
    dist: LifetimeDistribution,
    segments: np.ndarray,
    *,
    delta: float,
    start_age,
    restart_latency: float,
    n_replications: int,
    rng: np.random.Generator,
    max_rounds: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    durations = segments.copy()
    if segments.size > 1:
        durations[:-1] += delta
    # start_age is a scalar or a (n_replications,) array; F is evaluated
    # with the same array shape the vectorized kernel uses, so the
    # per-element conditioning values match bit-for-bit either way.
    given = np.asarray(start_age, dtype=float)
    if given.ndim == 0:
        F_arr = np.full(n_replications, float(np.asarray(dist.cdf(given), dtype=float)))
        start_arr = np.full(n_replications, float(given))
    else:
        F_arr = np.asarray(dist.cdf(given), dtype=float)
        start_arr = given
    uniforms = _RoundUniforms(rng, n_replications)
    makespan = np.zeros(n_replications)
    wasted = np.zeros(n_replications)
    completed = np.zeros(n_replications)
    restarts = np.zeros(n_replications, dtype=np.int64)
    n_rounds = 0
    for i in range(n_replications):
        rep = _EventReplication(
            dist,
            segments,
            durations,
            float(F_arr[i]),
            float(start_arr[i]),
            restart_latency,
            uniforms,
            i,
            max_rounds,
        )
        makespan[i], wasted[i], completed[i], restarts[i], rounds_i = rep.run()
        n_rounds = max(n_rounds, rounds_i)
    return makespan, wasted, completed, restarts, n_rounds


def run_replications(
    dist: LifetimeDistribution,
    segments: Sequence[float],
    *,
    delta: float = 1.0 / 60.0,
    start_age: float | Sequence[float] | np.ndarray = 0.0,
    restart_latency: float = 0.0,
    n_replications: int = 1000,
    seed: int | np.random.Generator | None = 0,
    backend: str = "vectorized",
    max_rounds: int = 10_000,
) -> ReplicationOutcomes:
    """Simulate ``n_replications`` runs of a checkpoint plan under ``dist``.

    Parameters
    ----------
    dist:
        Lifetime law of the VMs (any :class:`LifetimeDistribution`).
    segments:
        Work-hours between consecutive checkpoints; the final segment is
        not followed by a checkpoint write.
    delta:
        Checkpoint write cost in hours.
    start_age:
        Age of the first VM; its lifetime is conditioned on surviving to
        this age.  Replacement VMs are fresh.  Either one scalar age for
        the whole batch, or an array of shape ``(n_replications,)``
        giving each replication its own first-VM age — the shape the
        policy-evaluation layer uses to score reuse decisions over
        sampled VM ages.
    restart_latency:
        Extra hours charged per preemption for acquiring the replacement.
    seed:
        Root seed (or an existing generator) for the round-protocol
        draws.  Identical seeds give identical per-replication outcomes
        on *both* backends (within 1e-9 hours); pass ``None`` for
        OS-entropy seeding.
    backend:
        ``"vectorized"`` (default) or ``"event"`` — see the module
        docstring for the trade-off.
    max_rounds:
        Safety cap on VM generations before declaring the plan
        unfinishable.

    Returns
    -------
    ReplicationOutcomes
        Per-replication makespan / wasted hours / completed work /
        restart counts.
    """
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    segs = np.asarray([check_positive("segment", s) for s in segments], dtype=float)
    if segs.size == 0:
        raise ValueError("segments must be non-empty")
    check_nonnegative("delta", delta)
    check_nonnegative("restart_latency", restart_latency)
    if n_replications < 0:
        raise ValueError(f"n_replications must be >= 0, got {n_replications}")
    check_positive("max_rounds", max_rounds)
    start_arr = np.asarray(start_age, dtype=float)
    if start_arr.ndim == 0:
        start_val: float | np.ndarray = check_nonnegative("start_age", float(start_arr))
    else:
        if start_arr.shape != (int(n_replications),):
            raise ValueError(
                "per-replication start_age must have shape "
                f"({n_replications},), got {start_arr.shape}"
            )
        if np.any(start_arr < 0.0):
            raise ValueError("start_age entries must be >= 0")
        start_val = start_arr
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    kernel = simulate_plan_vectorized if backend == "vectorized" else _simulate_plan_event
    makespan, wasted, completed, restarts, n_rounds = kernel(
        dist,
        segs,
        delta=float(delta),
        start_age=start_val,
        restart_latency=float(restart_latency),
        n_replications=int(n_replications),
        rng=rng,
        max_rounds=int(max_rounds),
    )
    return ReplicationOutcomes(
        makespan=makespan,
        wasted_hours=wasted,
        completed_work=completed,
        n_restarts=restarts,
        n_rounds=n_rounds,
        backend=backend,
    )

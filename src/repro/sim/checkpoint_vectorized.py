"""Batched DP checkpoint planning for the lockstep kernels.

The event-driven controller plans checkpoints per job attempt by
walking :meth:`repro.policies.checkpointing.CheckpointPolicy.plan`'s
DP table (``i = choice[j, a]`` segments of ``i * step`` work hours,
ages advancing by ``i * step + delta`` per non-final segment).  This
module gives the lockstep kernels the same walk as array state, so
``checkpoint="dp"`` runs N replications at once through the
structure-of-arrays core's
:class:`~repro.sim.vectorized._LockstepKernel` primitives (the walker
is driven from ``_launch_segment``) instead of staying event-only.

Equivalence contract
--------------------
Per ``(replication, job)`` the walker replays the event path exactly:

* :meth:`DPPlanWalker.begin` is the controller's
  ``_plan_checkpoints`` guard — an attempt with
  ``remaining < checkpoint_step`` runs unplanned (one unchecked
  segment), otherwise the plan state is ``j = round(remaining / step)``
  work-steps at age index ``min(round(start_age / age_step), n_ages-1)``
  (the gang's oldest selected VM, the ``ClusterManager._start`` age).
* :meth:`DPPlanWalker.next_take` is one ``plan()`` loop iteration fused
  with ``JobExecution._clip_segments``: the next segment takes
  ``min(choice[j, a] * step, left)`` hours, ages advance by
  ``round((i * step + delta) / age_step)`` capped at the grid end, and
  a walk that exhausts its steps with residual work left (the DP plan
  covers ``round(remaining / step) * step``, not ``remaining``) runs
  the remainder as one final unchecked segment — exactly the clipped
  plan's trailing entry.

Finality itself stays with the kernel's ``after <= residual`` test,
which coincides with the clipped plan's positional finality: the DP
walk truncates at the segment whose cumulative work crosses
``remaining`` and appends a remainder only when the plan undershoots.

One DP table serves every replication: the rows of ``_solve(n)`` are
independent of ``n`` (row ``j`` only reads rows ``< j``), so the
walker keeps the largest table seen and indexes it at each job's
current step count — this sharing is where the batched speedup over
per-attempt event planning comes from.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import LifetimeDistribution
from repro.policies.checkpointing import CheckpointPolicy

__all__ = ["DPPlanWalker", "walker_from_config"]


class DPPlanWalker:
    """Array-state DP plan walk for ``(n_replications, n_jobs)`` attempts.

    Parameters
    ----------
    policy:
        The :class:`CheckpointPolicy` whose table the walk follows —
        built with the kernel config's ``checkpoint_step`` /
        ``checkpoint_cost``, matching the controller's construction.
    n_replications, n_jobs:
        State shape; one ``(steps left, age index)`` pair per cell.
    """

    def __init__(self, policy: CheckpointPolicy, n_replications: int, n_jobs: int):
        self.policy = policy
        self.step = policy.step
        self.delta = policy.delta
        self.age_step = policy.age_step
        self.n_ages = policy._ages.size
        #: Remaining planned work-steps per (replication, job); 0 means
        #: the attempt runs (the rest of) its work as one unchecked
        #: remainder segment.
        self.dp_j = np.zeros((n_replications, n_jobs), dtype=np.int64)
        #: Current age-grid index per (replication, job).
        self.dp_a = np.zeros((n_replications, n_jobs), dtype=np.int64)
        self._table = None
        self._table_n = 0

    def _ensure(self, n_steps: int) -> None:
        """Grow the shared table to cover ``n_steps`` work-steps."""
        if n_steps > self._table_n:
            self._table = self.policy._solve(int(n_steps))
            self._table_n = int(n_steps)

    def begin(
        self,
        rr: np.ndarray,
        jj: np.ndarray,
        left: np.ndarray,
        start_age: np.ndarray,
    ) -> None:
        """(Re)plan attempts: job ``jj`` of row ``rr`` starts ``left``
        remaining hours on a gang whose oldest VM has ``start_age``."""
        planned = left >= self.step
        n_steps = np.where(
            planned, np.round(left / self.step).astype(np.int64), 0
        )
        if n_steps.size:
            self._ensure(int(n_steps.max()))
        self.dp_j[rr, jj] = n_steps
        ages = np.minimum(
            np.round(start_age / self.age_step).astype(np.int64), self.n_ages - 1
        )
        self.dp_a[rr, jj] = np.where(planned, ages, 0)

    def next_take(
        self, rr: np.ndarray, jj: np.ndarray, left: np.ndarray
    ) -> np.ndarray:
        """Work hours of the next segment per attempt, advancing the walk."""
        j = self.dp_j[rr, jj]
        take = np.array(left, dtype=float, copy=True)
        idx = np.flatnonzero(j > 0)
        if idx.size:
            rp, jp = rr[idx], jj[idx]
            jv = j[idx]
            av = self.dp_a[rp, jp]
            i = self._table.choice[jv, av].astype(np.int64)
            take[idx] = np.minimum(i * self.step, left[idx])
            w = i * self.step + self.delta
            adv = np.round(w / self.age_step).astype(np.int64)
            self.dp_a[rp, jp] = np.minimum(av + adv, self.n_ages - 1)
            self.dp_j[rp, jp] = jv - i
        return take


def walker_from_config(
    dist: LifetimeDistribution,
    config,
    n_replications: int,
    work: np.ndarray,
) -> DPPlanWalker | None:
    """The kernel hook: a walker when ``config.checkpoint == "dp"``, else
    ``None`` (fixed-interval / unchecked segments keep the tau logic).

    ``work`` is the per-job hours array; the shared table is pre-solved
    at the largest step count any attempt can need, so the lockstep run
    never re-solves mid-sweep.
    """
    if getattr(config, "checkpoint", "interval") != "dp":
        return None
    policy = CheckpointPolicy(
        dist, step=config.checkpoint_step, delta=config.checkpoint_cost
    )
    walker = DPPlanWalker(policy, int(n_replications), int(work.size))
    if work.size:
        top = int(round(float(work.max()) / policy.step))
        if top > 0:
            walker._ensure(top)
    return walker

"""Opt-in compiled inner loop for the replication (plan) kernel.

``backend="vectorized-compiled"`` on :func:`repro.sim.backend.run_replications`
replaces the NumPy round loop of
:func:`repro.sim.vectorized.simulate_plan_vectorized` with a scalar
per-replication walk executed by a *compiled provider*:

``"numba"``
    :func:`numba.njit` over the pure-Python walk below (soft dependency
    — import-guarded, skipped when numba is absent).
``"cc"``
    The same walk translated to C, built once with the system C compiler
    (``cc -O2 -fPIC -shared -ffp-contract=off``) into an in-repo build
    cache and loaded through :mod:`ctypes`.  No third-party dependency.
``"python"``
    The un-jitted walk itself — slow, but always available; the
    compiled-equivalence tests use it so the *logic* is exercised even
    where neither toolchain exists.

Bit-compatibility contract
--------------------------
The walk consumes the same round-protocol uniforms (one full-width
``rng.random(n)`` row per round, blocks of rows drawn in row-major order
so the bitstream order is unchanged) and reproduces the NumPy kernel's
arithmetic operation-for-operation: the conditional-quantile map, the
inverse CDF through the distribution's exact ``ppf_table()`` grid
(replicating ``np.interp`` — binary search, ``slope*(x-xp[j])+fp[j]``,
compiled with FP contraction off so no FMA sneaks in), the
``searchsorted(..., side="right")`` segment walk, and the per-round
accumulation order.  Outcomes are therefore *byte-identical* to
``backend="vectorized"``, which the compiled-equivalence tests pin with
exact array equality.

Distributions without an exact interpolation grid (``ppf_table()``
returning ``None``) fall back to mapping each block of uniform rows
through Python-side ``dist.ppf`` — elementwise identical — before the
compiled walk runs the segment arithmetic.

Generator consumption
---------------------
In block mode the generator may advance past the final round (whole
blocks are drawn ahead); entry points therefore enable block mode only
when they constructed the generator themselves from an integer seed.
With a caller-supplied :class:`numpy.random.Generator` or an armed
:class:`~repro.sim.backend.DrawCapture` the walk draws one row at a
time, consuming the generator exactly like the NumPy kernel.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import sys
from pathlib import Path

import numpy as np

from repro.distributions.base import LifetimeDistribution
from repro.sim.vectorized import conditional_quantiles

__all__ = [
    "COMPILED_BACKEND",
    "COMPILED_PROVIDERS",
    "available_providers",
    "resolve_walk",
    "simulate_plan_compiled",
]

#: The ``backend=`` value that selects this module.
COMPILED_BACKEND = "vectorized-compiled"

#: Provider preference order for automatic resolution ("python" is
#: opt-in only — it exists for logic tests, not for speed).
COMPILED_PROVIDERS = ("numba", "cc")

#: Rows per uniform block in block mode (doubling up to the cap).
_BLOCK_START = 8
_BLOCK_MAX = 256

#: Rows per walk call within a drawn block: at 1k replications a 64-row
#: tile of uniforms is ~512 kB, small enough to stay cache-warm across
#: the replication-major sweep (measured best on the slow-equivalence
#: grid; smaller tiles pay per-call state re-traversal instead).
_TILE_ROWS = 64


# ----------------------------------------------------------------------
# The walk, in pure Python (njit-compatible: arrays, scalars, loops)
# ----------------------------------------------------------------------

def _interp1_py(x, xp, fp, gl, hint, slopes, M):
    """Scalar ``np.interp`` replica over a sorted grid of ``gl`` nodes.

    ``hint`` brackets each of ``M`` uniform buckets of the query domain
    [0, 1] (see :func:`_ppf_hint`) and ``slopes`` holds the
    per-interval slope, precomputed with the same double division
    ``np.interp`` performs per query; both only shorten the search,
    never change the result.
    """
    if x < xp[0]:
        return fp[0]
    if x >= xp[gl - 1]:
        return fp[gl - 1]
    b = int(x * M)
    if b >= M:
        b = M - 1
    lo = hint[b]
    hi = hint[b + 1] + 1
    # The bucket bracket is advisory (float rounding at bucket edges can
    # misplace it by one); fall back to the full range when it misses.
    if xp[lo] > x:
        lo = 0
    if hi >= gl or xp[hi] <= x:
        hi = gl - 1
    # Invariant: xp[lo] <= x < xp[hi].
    while hi - lo > 1:
        mid = (lo + hi) >> 1
        if xp[mid] <= x:
            lo = mid
        else:
            hi = mid
    if xp[lo] == x:
        return fp[lo]
    return slopes[lo] * (x - xp[lo]) + fp[lo]


def _bisect_right_py(a, lo, hi, v):
    """``np.searchsorted(a, v, side="right")`` restricted to ``a[lo:hi]``."""
    while lo < hi:
        mid = (lo + hi) >> 1
        if a[mid] <= v:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _build_find_seg(bisect_right):
    """Bind the guessed segment lookup over a (possibly jitted) bisection."""

    def find_seg(a, k, K1, v, inv_d):
        # Largest j in [k, K1) with a[j] <= v (requires a[k] <= v) —
        # equal to np.searchsorted(a, v, side="right") - 1 for the
        # walk's inputs.  Starts from an average-duration guess
        # (inv_d is K / a[K]), scans locally, and falls back to
        # bisection after a few steps so skewed schedules stay
        # O(log K).
        j = k + int((v - a[k]) * inv_d)
        if j > K1 - 1:
            j = K1 - 1
        if j < k:
            j = k
        if a[j] <= v:
            t = 0
            while j + 1 < K1 and a[j + 1] <= v:
                j += 1
                t += 1
                if t == 8:
                    return bisect_right(a, j + 1, K1, v) - 1
            return j
        t = 0
        while a[j] > v:
            j -= 1
            t += 1
            if t == 8:
                return bisect_right(a, k + 1, j + 1, v) - 1
        return j

    return find_seg


_find_seg_py = _build_find_seg(_bisect_right_py)


def _build_walk(interp1, find_seg):
    """Bind the walk over (possibly jitted) helpers; see module docstring.

    The loop is replication-major (rounds inner): each replication's
    accumulators live in locals/registers across its rounds and are
    stored back once.  Replications are mutually independent and each
    one's per-round accumulation order is unchanged, so outcomes are
    identical to the round-major NumPy kernel.
    """

    def walk_block(
        u,            # (rows, n) uniforms (or pre-mapped lifetimes)
        rows,
        n,
        qx,           # ppf grid quantiles (unused when pre_mapped)
        qt,           # ppf grid lifetimes
        gl,           # grid length
        hint,         # (M+1,) bucket brackets for interp1
        slopes,       # (gl-1,) precomputed interp slopes
        M,            # bucket count
        pre_mapped,   # 1: u rows already hold lifetimes
        Fs,           # (n,) F(start_age)
        age0,         # (n,) first-VM ages
        cum_w,        # (K+1,) cumulative wall-clock of the plan
        cum_s,        # (K+1,) cumulative durable work
        K,
        inv_d,        # K / cum_w[K]: segment-guess scale for find_seg
        restart_latency,
        global_round,  # round index of u[0]
        seg_idx,
        makespan,
        wasted,
        completed,
        restarts,
        active,       # (n,) uint8
        n_active,
    ):
        # rows_done = number of rounds the round-major kernel would have
        # executed over this block: the max round any replication
        # consumed (rows, for one that is still active at block end).
        rows_done = 0
        for i in range(n):
            if active[i] == 0:
                continue
            k = seg_idx[i]
            mk = makespan[i]
            wa = wasted[i]
            co = completed[i]
            rs = restarts[i]
            finished = False
            for r in range(rows):
                uv = u[r, i]
                if global_round + r == 0:
                    if pre_mapped == 1:
                        death = uv
                    else:
                        fs = Fs[i]
                        q = fs + uv * (1.0 - fs)
                        if q > 1.0:
                            q = 1.0
                        death = interp1(q, qx, qt, gl, hint, slopes, M)
                    age = age0[i]
                else:
                    if pre_mapped == 1:
                        death = uv
                    else:
                        death = interp1(uv, qx, qt, gl, hint, slopes, M)
                    age = 0.0
                budget = death - age
                if budget < 0.0:
                    budget = 0.0
                j = find_seg(cum_w, k, K + 1, cum_w[k] + budget, inv_d)
                if j >= K:
                    mk += cum_w[K] - cum_w[k]
                    co += cum_s[K] - cum_s[k]
                    k = K
                    active[i] = 0
                    n_active -= 1
                    finished = True
                    if r + 1 > rows_done:
                        rows_done = r + 1
                    break
                mk += budget + restart_latency
                co += cum_s[j] - cum_s[k]
                wa += budget - (cum_w[j] - cum_w[k])
                rs += 1
                k = j
            if not finished:
                rows_done = rows
            seg_idx[i] = k
            makespan[i] = mk
            wasted[i] = wa
            completed[i] = co
            restarts[i] = rs
        return n_active, rows_done

    return walk_block


#: The always-available reference implementation ("python" provider).
_walk_block_py = _build_walk(_interp1_py, _find_seg_py)

#: Buckets in the interpolation hint table (query domain is [0, 1]).
#: 8x the default grid size, so most buckets pin the segment without any
#: bisection; the table is built once per distribution and cached.
_PPF_HINT_BUCKETS = 32768


def _ppf_hint(
    dist, qx: np.ndarray, qt: np.ndarray
) -> tuple[np.ndarray, np.ndarray, int]:
    """Bucket brackets and slopes for the grid, cached on the distribution.

    ``hint[b]`` is the largest grid index at or below ``b/M``, so the
    query window for bucket ``b`` is ``[hint[b], hint[b+1] + 1]`` —
    usually 1–2 entries instead of the full grid.  ``slopes[j]`` is the
    per-interval slope computed with the same double division
    ``np.interp`` performs per query (repeated grid nodes give unused
    slots: the walk's early-exact return means they are never read).
    Purely accelerators — the walk re-checks the bracket and falls back
    to the full range if float rounding at a bucket edge misplaced it.
    """
    M = _PPF_HINT_BUCKETS
    cache = dist.__dict__.get("_compiled_ppf_hint")
    if cache is not None and cache[0] is qx:
        return cache[1], cache[2], M
    edges = np.arange(M + 1, dtype=float) / M
    hint = np.ascontiguousarray(
        np.maximum(np.searchsorted(qx, edges, side="right") - 1, 0),
        dtype=np.int64,
    )
    dx = np.diff(qx)
    dy = np.diff(qt)
    with np.errstate(divide="ignore", invalid="ignore"):
        slopes = np.where(dx > 0.0, dy / np.where(dx > 0.0, dx, 1.0), 0.0)
    slopes = np.ascontiguousarray(slopes, dtype=float)
    dist.__dict__["_compiled_ppf_hint"] = (qx, hint, slopes)
    return hint, slopes, M


# ----------------------------------------------------------------------
# Providers
# ----------------------------------------------------------------------

_C_SOURCE = r"""
#include <stdint.h>

static double interp1(double x, const double *xp, const double *fp,
                      int64_t gl, const int64_t *hint,
                      const double *slopes, int64_t M) {
    int64_t lo, hi, mid, b;
    if (x < xp[0]) return fp[0];
    if (x >= xp[gl - 1]) return fp[gl - 1];
    b = (int64_t)(x * (double)M);
    if (b >= M) b = M - 1;
    lo = hint[b];
    hi = hint[b + 1] + 1;
    /* The bucket bracket is advisory (float rounding at bucket edges
       can misplace it by one); fall back to the full range if it
       misses so the result always matches a full binary search. */
    if (xp[lo] > x) lo = 0;
    if (hi >= gl || xp[hi] <= x) hi = gl - 1;
    while (hi - lo > 1) {
        mid = (lo + hi) >> 1;
        if (xp[mid] <= x) lo = mid; else hi = mid;
    }
    if (xp[lo] == x) return fp[lo];
    return slopes[lo] * (x - xp[lo]) + fp[lo];
}

static int64_t bisect_right(const double *a, int64_t lo, int64_t hi,
                            double v) {
    int64_t mid;
    while (lo < hi) {
        mid = (lo + hi) >> 1;
        if (a[mid] <= v) lo = mid + 1; else hi = mid;
    }
    return lo;
}

/* Largest j in [k, K1) with a[j] <= v (requires a[k] <= v) — equal to
   searchsorted-right minus one.  Average-duration guess plus a short
   local scan; bisection fallback keeps skewed schedules O(log K). */
static int64_t find_seg(const double *a, int64_t k, int64_t K1, double v,
                        double inv_d) {
    int64_t j = k + (int64_t)((v - a[k]) * inv_d);
    int64_t t;
    if (j > K1 - 1) j = K1 - 1;
    if (j < k) j = k;
    if (a[j] <= v) {
        t = 0;
        while (j + 1 < K1 && a[j + 1] <= v) {
            j++;
            if (++t == 8) return bisect_right(a, j + 1, K1, v) - 1;
        }
        return j;
    }
    t = 0;
    while (a[j] > v) {
        j--;
        if (++t == 8) return bisect_right(a, k + 1, j + 1, v) - 1;
    }
    return j;
}

int64_t plan_walk_block(
    const double *u, int64_t rows, int64_t n,
    const double *qx, const double *qt, int64_t gl,
    const int64_t *hint, const double *slopes, int64_t M,
    int64_t pre_mapped,
    const double *Fs, const double *age0,
    const double *cum_w, const double *cum_s, int64_t K,
    double inv_d, double restart_latency, int64_t global_round,
    int64_t *seg_idx, double *makespan, double *wasted, double *completed,
    int64_t *restarts, uint8_t *active, int64_t n_active,
    int64_t *rows_done_out)
{
    int64_t r, i, k, j, rs, finished;
    double uv, death, age, budget, fs, q, mk, wa, co;
    int64_t rows_done = 0;
    /* Replication-major: accumulators stay in registers across a
       replication's rounds; replications are independent and each
       one's accumulation order is unchanged, so outcomes match the
       round-major kernel exactly. */
    for (i = 0; i < n; i++) {
        if (!active[i]) continue;
        k = seg_idx[i];
        mk = makespan[i];
        wa = wasted[i];
        co = completed[i];
        rs = restarts[i];
        finished = 0;
        for (r = 0; r < rows; r++) {
            uv = u[r * n + i];
            if (global_round + r == 0) {
                if (pre_mapped) {
                    death = uv;
                } else {
                    fs = Fs[i];
                    q = fs + uv * (1.0 - fs);
                    if (q > 1.0) q = 1.0;
                    death = interp1(q, qx, qt, gl, hint, slopes, M);
                }
                age = age0[i];
            } else {
                death = pre_mapped
                    ? uv : interp1(uv, qx, qt, gl, hint, slopes, M);
                age = 0.0;
            }
            budget = death - age;
            if (budget < 0.0) budget = 0.0;
            j = find_seg(cum_w, k, K + 1, cum_w[k] + budget, inv_d);
            if (j >= K) {
                mk += cum_w[K] - cum_w[k];
                co += cum_s[K] - cum_s[k];
                k = K;
                active[i] = 0;
                n_active--;
                finished = 1;
                if (r + 1 > rows_done) rows_done = r + 1;
                break;
            }
            mk += budget + restart_latency;
            co += cum_s[j] - cum_s[k];
            wa += budget - (cum_w[j] - cum_w[k]);
            rs += 1;
            k = j;
        }
        if (!finished) rows_done = rows;
        seg_idx[i] = k;
        makespan[i] = mk;
        wasted[i] = wa;
        completed[i] = co;
        restarts[i] = rs;
    }
    *rows_done_out = rows_done;
    return n_active;
}
"""

_D = ctypes.POINTER(ctypes.c_double)
_I = ctypes.POINTER(ctypes.c_int64)
_B = ctypes.POINTER(ctypes.c_uint8)


def _load_numba():
    """Jit the pure-Python walk with numba (raises ImportError if absent)."""
    import numba

    interp1 = numba.njit(cache=False)(_interp1_py)
    bisect_right = numba.njit(cache=False)(_bisect_right_py)
    find_seg = numba.njit(cache=False)(_build_find_seg(bisect_right))
    return numba.njit(cache=False)(_build_walk(interp1, find_seg))


def _build_dir() -> Path:
    """In-repo build cache for the cc provider's shared object."""
    return Path(__file__).resolve().parents[3] / "build" / "compiled"


def _load_cc():
    """Compile and load the C walk through ctypes (raises on any failure)."""
    cc = os.environ.get("CC", "cc")
    tag = hashlib.sha256(
        (_C_SOURCE + cc + sys.platform).encode()
    ).hexdigest()[:16]
    out_dir = _build_dir()
    lib_path = out_dir / f"plan_walk_{tag}.so"
    if not lib_path.exists():
        out_dir.mkdir(parents=True, exist_ok=True)
        src_path = out_dir / f"plan_walk_{tag}.c"
        src_path.write_text(_C_SOURCE)
        # -ffp-contract=off: no FMA fusion, so the interpolation and the
        # segment arithmetic round exactly like NumPy's element ops.
        tmp_path = lib_path.with_suffix(f".tmp{os.getpid()}.so")
        subprocess.run(
            [cc, "-O2", "-fPIC", "-shared", "-ffp-contract=off",
             "-o", str(tmp_path), str(src_path)],
            check=True,
            capture_output=True,
        )
        os.replace(tmp_path, lib_path)
    lib = ctypes.CDLL(str(lib_path))
    fn = lib.plan_walk_block
    fn.restype = ctypes.c_int64
    fn.argtypes = [
        _D, ctypes.c_int64, ctypes.c_int64,
        _D, _D, ctypes.c_int64,
        _I, _D, ctypes.c_int64,
        ctypes.c_int64,
        _D, _D,
        _D, _D, ctypes.c_int64,
        ctypes.c_double, ctypes.c_double, ctypes.c_int64,
        _I, _D, _D, _D,
        _I, _B, ctypes.c_int64,
        _I,
    ]

    def as_d(a):
        return a.ctypes.data_as(_D)

    def as_i(a):
        return a.ctypes.data_as(_I)

    def walk(u, rows, n, qx, qt, gl, hint, slopes, M, pre_mapped, Fs, age0,
             cum_w, cum_s, K, inv_d, restart_latency, global_round, seg_idx,
             makespan, wasted, completed, restarts, active, n_active):
        rows_done = ctypes.c_int64(0)
        remaining = fn(
            as_d(u), rows, n,
            as_d(qx), as_d(qt), gl,
            as_i(hint), as_d(slopes), M,
            pre_mapped,
            as_d(Fs), as_d(age0),
            as_d(cum_w), as_d(cum_s), K,
            inv_d, restart_latency, global_round,
            as_i(seg_idx), as_d(makespan), as_d(wasted), as_d(completed),
            as_i(restarts), active.ctypes.data_as(_B), n_active,
            ctypes.byref(rows_done),
        )
        return remaining, rows_done.value

    return walk


def _load_python():
    return _walk_block_py


#: Loader registry — tests monkeypatch entries to simulate absence.
_LOADERS = {
    "numba": _load_numba,
    "cc": _load_cc,
    "python": _load_python,
}

#: Resolved walks, keyed by provider name.
_PROVIDER_CACHE: dict[str, object] = {}


def available_providers() -> tuple[str, ...]:
    """Names of the compiled providers that load on this machine."""
    out = []
    for name in COMPILED_PROVIDERS:
        try:
            resolve_walk(name)
        except Exception:
            continue
        out.append(name)
    return tuple(out)


def resolve_walk(provider: str | None = None):
    """Return ``(provider_name, walk_callable)`` for the requested provider.

    ``None`` tries the preference order in :data:`COMPILED_PROVIDERS`
    and raises an actionable :class:`ImportError` when none loads.
    """
    if provider is not None:
        if provider not in _LOADERS:
            raise ValueError(
                f"unknown compiled provider {provider!r}; "
                f"choose from {tuple(_LOADERS)}"
            )
        if provider not in _PROVIDER_CACHE:
            _PROVIDER_CACHE[provider] = _LOADERS[provider]()
        return provider, _PROVIDER_CACHE[provider]
    # Auto resolution is cached too, so a missing first-choice provider
    # (e.g. no numba) is not re-imported on every simulate call.
    auto = _PROVIDER_CACHE.get("__auto__")
    if auto is not None:
        return auto
    failures = []
    for name in COMPILED_PROVIDERS:
        try:
            resolved = resolve_walk(name)
        except Exception as exc:  # noqa: BLE001 — report every path
            failures.append(f"{name}: {type(exc).__name__}: {exc}")
        else:
            _PROVIDER_CACHE["__auto__"] = resolved
            return resolved
    detail = "; ".join(failures)
    raise ImportError(
        "backend='vectorized-compiled' needs an optional compiled "
        f"provider and none is available ({detail}). Install numba "
        "(`pip install numba`) or make a C compiler (`cc`) available — "
        "or use backend='vectorized', which needs neither."
    )


# ----------------------------------------------------------------------
# The kernel wrapper
# ----------------------------------------------------------------------

def simulate_plan_compiled(
    dist: LifetimeDistribution,
    segments: np.ndarray,
    *,
    delta: float,
    start_age,
    restart_latency: float,
    n_replications: int,
    rng,
    max_rounds: int = 10_000,
    provider: str | None = None,
    stream_exact: bool = False,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Compiled twin of :func:`repro.sim.vectorized.simulate_plan_vectorized`.

    Same signature and return value; outcomes are byte-identical (see
    the module docstring).  ``stream_exact=True`` draws one
    ``rng.random(n)`` row per round — consuming the generator exactly
    like the NumPy kernel, at some speed cost — and is required when the
    caller observes the generator afterwards (a passed-in ``Generator``)
    or records rows (an armed ``DrawCapture``).
    """
    _, walk = resolve_walk(provider)

    segs = np.asarray(segments, dtype=float)
    K = int(segs.size)
    durations = segs.copy()
    if K > 1:
        durations[:-1] += delta
    cum_w = np.concatenate(([0.0], np.cumsum(durations)))
    cum_s = np.concatenate(([0.0], np.cumsum(segs)))

    n = int(n_replications)
    makespan = np.zeros(n)
    wasted = np.zeros(n)
    completed = np.zeros(n)
    restarts = np.zeros(n, dtype=np.int64)
    seg_idx = np.zeros(n, dtype=np.int64)
    active = np.ones(n, dtype=np.uint8)

    # F(start_age) evaluated with the caller's shape (scalar or array)
    # exactly like the NumPy kernel, then broadcast per replication.
    start_arr = np.asarray(start_age, dtype=float)
    F_given = np.asarray(dist.cdf(start_arr), dtype=float)
    Fs = np.ascontiguousarray(np.broadcast_to(F_given, (n,)), dtype=float)
    age0 = np.ascontiguousarray(np.broadcast_to(start_arr, (n,)), dtype=float)

    table = dist.ppf_table() if hasattr(dist, "ppf_table") else None
    if table is not None:
        qx = np.ascontiguousarray(table[0], dtype=float)
        qt = np.ascontiguousarray(table[1], dtype=float)
        gl = int(qx.size)
        pre_mapped = 0
        hint, slopes, M = _ppf_hint(dist, qx, qt)
    else:
        qx = qt = np.zeros(1)
        gl = 1
        pre_mapped = 1
        hint = np.zeros(2, dtype=np.int64)
        slopes = np.zeros(1)
        M = 1
    total_w = float(cum_w[K]) if K else 0.0
    inv_d = K / total_w if total_w > 0.0 else 0.0

    n_active = n
    round_idx = 0
    if stream_exact:
        block = 1
    else:
        # Size the first block from the expected round count (total
        # wall-clock over mean lifetime, plus slack for the slowest
        # replication) so block mode rarely overdraws the generator;
        # stragglers then fall back to the doubling schedule.
        mean_life = dist.__dict__.get("_compiled_mean_life")
        if mean_life is None:
            try:
                mean_life = float(dist.mean())
            except Exception:  # noqa: BLE001 — estimation only
                mean_life = 0.0
            dist.__dict__["_compiled_mean_life"] = mean_life
        if np.isfinite(mean_life) and mean_life > 0.0 and total_w > 0.0:
            est = total_w / mean_life
            block = int(est + 4.0 * est**0.5 + float(_BLOCK_START))
        else:
            block = _BLOCK_START
        # Bound first-block memory to ~32 MB of uniforms.
        block = max(_BLOCK_START, min(block, max(4_000_000 // max(n, 1), 1)))
    while n_active:
        if round_idx >= max_rounds:
            raise RuntimeError(
                f"{n_active} replications unfinished after {max_rounds} "
                "rounds; schedule cannot finish under this lifetime law"
            )
        rows = min(block, max_rounds - round_idx)
        if stream_exact:
            u = np.ascontiguousarray(rng.random(n)).reshape(1, n)
            rows = 1
        else:
            u = rng.random((rows, n))
        if pre_mapped:
            # No exact grid: map uniforms through Python-side ppf rows
            # (elementwise identical to the NumPy kernel's calls).
            if round_idx == 0:
                u[0] = conditional_quantiles(u[0], F_given)
            u = np.asarray(dist.ppf(u), dtype=float)
        u = np.ascontiguousarray(u)
        # Walk the drawn block in row tiles so the uniforms stay
        # cache-warm; each tile resumes where the previous one stopped
        # (``round_idx`` carries the absolute round of the tile's first
        # row, so accounting matches a single whole-block call).
        for off in range(0, rows, _TILE_ROWS):
            t_rows = min(_TILE_ROWS, rows - off)
            n_active, rows_done = walk(
                u[off : off + t_rows], t_rows, n, qx, qt, gl, hint, slopes,
                M, pre_mapped, Fs, age0, cum_w, cum_s, K, inv_d,
                float(restart_latency), round_idx, seg_idx, makespan,
                wasted, completed, restarts, active, n_active,
            )
            round_idx += int(rows_done)
            if not n_active:
                break
        if not stream_exact:
            # After the estimated first block only stragglers remain:
            # restart the doubling schedule from small blocks.
            block = _BLOCK_START * 2 if block > _BLOCK_MAX else min(
                block * 2, _BLOCK_MAX
            )

    return makespan, wasted, completed, restarts, round_idx

"""Batched (array-shaped) Monte-Carlo kernels for replication sweeps.

The event-driven :class:`repro.sim.engine.Simulator` pays Python-level
heap and callback costs for *every* segment of *every* replication, so a
10k-replication sweep is dominated by interpreter dispatch even though
the per-replication logic — sample a lifetime, walk a checkpoint plan,
accumulate wasted/useful hours — is embarrassingly parallel.  This
module hoists that inner loop into NumPy: all N replications advance
together as flat arrays, and the restart-until-done kernel iterates in
"rounds" (one VM acquisition per round) over only the still-unfinished
replications.

It is also the home of the structure-of-arrays core the event-driven
lockstep kernels share: :class:`EventArena` (the fused pending-event
table) and :class:`_LockstepKernel` (per-round event selection plus the
segment/ordering primitives), consumed by the cluster, service, and
tenancy kernels and — through ``_launch_segment`` — by the DP plan
walker in :mod:`repro.sim.checkpoint_vectorized`.

Draw protocol (the determinism contract shared with the event backend)
-----------------------------------------------------------------------
Round ``r`` draws one uniform vector ``u_r = rng.random(n)`` from the
single generator; replication ``i``'s ``r``-th VM lifetime comes from
``u_r[i]`` by inverse-transform sampling through the distribution's
cached PPF table.  Finished replications keep (and discard) their column
so that column ``i`` is a function of ``(seed, i, r)`` alone — never of
the progress of *other* replications.  Rounds are drawn only while at
least one replication is unfinished.  The event backend consumes the
same generator through the same protocol, which is what makes the two
backends bit-compatible for identical seeds (see
:mod:`repro.sim.backend`).

Execution semantics (identical to the event-driven reference)
-------------------------------------------------------------
A replication runs ``segments`` in order; every non-final segment is
followed by a ``delta``-hour checkpoint write.  The first VM's lifetime
is conditioned on survival to ``start_age``; if the VM dies before the
current segment (plus its checkpoint) finishes, all progress since the
last checkpoint is lost, ``restart_latency`` hours are charged, and the
replication resumes from its last checkpoint on a fresh VM in the next
round.  Ties favour completion: a VM that dies *exactly* at a segment
boundary completes the segment.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import LifetimeDistribution

__all__ = [
    "conditional_quantiles",
    "sample_lifetimes",
    "simulate_plan_vectorized",
    "simulate_job_attempts_vectorized",
    "EventArena",
]

#: Sentinel sequence number larger than any a lockstep kernel can assign.
_SEQ_INF = np.iinfo(np.int64).max
#: Residual-work threshold below which a segment is final (the
#: ``JobExecution._clip_segments`` tolerance).
_RESIDUAL = 1e-12


class EventArena:
    """Fused pending-event table of a lockstep kernel (SoA layout).

    One pair of preallocated ``(n, C)`` arrays — ``times`` (float) and
    ``seqs`` (int64) — holds *every* event channel of a kernel (VM
    deaths, segment completions, worker boots, reap timers, arrivals)
    as adjacent column spans.  Kernels write through per-channel slice
    views, so the per-round selection is two reductions over one
    contiguous block with **no** per-round ``np.concatenate`` / mask
    copies; this is where the structure-of-arrays core pays off at
    100k+-replication scale.

    Invariant: a column with no pending event holds ``times == inf``
    and ``seqs == _SEQ_INF``.  In particular the death channel is *not*
    masked by an ``alive`` array at selection time — kernels clear a
    VM's death cell the moment the VM dies or is terminated.
    """

    def __init__(self, n: int, channels: list[tuple[str, int]]):
        total = sum(w for _, w in channels)
        self.times = np.full((n, total), np.inf)
        self.seqs = np.full((n, total), _SEQ_INF, dtype=np.int64)
        self.spans: dict[str, tuple[int, int]] = {}
        off = 0
        for name, w in channels:
            self.spans[name] = (off, off + w)
            off += w

    def channel(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """(times, seqs) slice views of one channel's column span."""
        lo, hi = self.spans[name]
        return self.times[:, lo:hi], self.seqs[:, lo:hi]

    def offset(self, name: str) -> int:
        """First fused-table column of ``name`` (for pick dispatch)."""
        return self.spans[name][0]

    def select(self, active: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Next event per active row: ``(tmin, pick)``.

        ``pick`` is the fused-table column of the earliest pending
        event, ties broken by the smallest insertion sequence — the
        :class:`repro.sim.engine.Simulator` heap contract.
        """
        times = self.times[active]
        tmin = times.min(axis=1)
        tie = times == tmin[:, None]
        pick = np.argmin(np.where(tie, self.seqs[active], _SEQ_INF), axis=1)
        return tmin, pick


def conditional_quantiles(u, cdf_at_age):
    """Map uniforms to quantiles of ``T | T > age`` given ``F(age)``.

    ``q = F(s) + u * (1 - F(s))``, clamped to 1 against floating-point
    overshoot.  ``cdf_at_age`` may be a scalar (one conditioning age for
    the whole batch) or an array aligned with ``u`` (per-replication
    ages).  Both backends use this exact expression so conditioned
    first-VM draws agree bit-for-bit.
    """
    u_arr = np.asarray(u, dtype=float)
    cdf_arr = np.asarray(cdf_at_age, dtype=float)
    out = np.minimum(cdf_arr + u_arr * (1.0 - cdf_arr), 1.0)
    return out if out.ndim else float(out)


def sample_lifetimes(
    dist: LifetimeDistribution,
    n: int,
    rng: np.random.Generator,
    *,
    start_age: float = 0.0,
) -> np.ndarray:
    """Draw ``n`` lifetimes conditioned on survival to ``start_age``.

    One vectorised inverse-CDF pass: ``ppf(F(s) + U (1 - F(s)))``.  With
    ``start_age = 0`` this is plain inverse-transform sampling.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if start_age < 0.0:
        raise ValueError(f"start_age must be >= 0, got {start_age}")
    F_s = float(np.asarray(dist.cdf(start_age), dtype=float)) if start_age > 0.0 else 0.0
    q = conditional_quantiles(rng.random(n), F_s)
    return np.asarray(dist.ppf(q), dtype=float)


def simulate_plan_vectorized(
    dist: LifetimeDistribution,
    segments: np.ndarray,
    *,
    delta: float,
    start_age: float,
    restart_latency: float,
    n_replications: int,
    rng: np.random.Generator,
    max_rounds: int = 10_000,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Restart-until-done kernel over N independent replications.

    Returns ``(makespan, wasted_hours, completed_work, n_restarts,
    n_rounds)`` — per-replication arrays plus the number of rounds (VM
    generations) the batch needed.  Argument validation lives in
    :func:`repro.sim.backend.run_replications`; this kernel assumes
    positive segments and non-negative ``delta``/``start_age``/latency.

    ``start_age`` may be a scalar (every replication's first VM has the
    same age) or an array of shape ``(n_replications,)`` — the shape the
    policy-evaluation layer uses, where each replication's job lands on
    a VM of a different sampled age.  Either way, the first VM's
    lifetime is conditioned on survival to its replication's age and
    replacement VMs are fresh.

    The per-round walk is closed-form: with ``cum_w`` the cumulative
    wall-clock of the plan (segment + checkpoint durations), a VM that
    grants ``budget`` hours starting from segment ``k`` completes through
    segment ``j-1`` where ``j = searchsorted(cum_w, cum_w[k] + budget,
    'right') - 1`` — a single O(N log K) pass instead of a Python loop
    over segments.
    """
    segs = np.asarray(segments, dtype=float)
    K = segs.size
    durations = segs.copy()
    if K > 1:
        durations[:-1] += delta
    # cum_w[j]: wall-clock hours to durably finish the first j segments
    # (each non-final one including its checkpoint write); cum_s[j]: the
    # corresponding durable *work* hours.
    cum_w = np.concatenate(([0.0], np.cumsum(durations)))
    cum_s = np.concatenate(([0.0], np.cumsum(segs)))

    n = int(n_replications)
    makespan = np.zeros(n)
    wasted = np.zeros(n)
    completed = np.zeros(n)
    restarts = np.zeros(n, dtype=np.int64)
    seg_idx = np.zeros(n, dtype=np.int64)  # next segment to (re)run
    active = np.arange(n)

    start_arr = np.asarray(start_age, dtype=float)
    per_rep_ages = start_arr.ndim > 0
    F_s = np.asarray(dist.cdf(start_arr), dtype=float)
    if not per_rep_ages:
        F_s = float(F_s)
    n_rounds = 0
    while active.size:
        if n_rounds >= max_rounds:
            raise RuntimeError(
                f"{active.size} replications unfinished after {max_rounds} "
                "rounds; schedule cannot finish under this lifetime law"
            )
        u = rng.random(n)  # full-width row: the draw protocol (see module doc)
        ua = u[active]
        if n_rounds == 0:
            F_a = F_s[active] if per_rep_ages else F_s
            death = np.asarray(dist.ppf(conditional_quantiles(ua, F_a)), dtype=float)
            age = start_arr[active] if per_rep_ages else float(start_arr)
        else:
            death = np.asarray(dist.ppf(ua), dtype=float)
            age = 0.0
        # The PPF table can land epsilon below the conditioning age.
        budget = np.maximum(death - age, 0.0)

        k = seg_idx[active]
        j = np.searchsorted(cum_w, cum_w[k] + budget, side="right") - 1
        finished = j >= K

        fin = active[finished]
        if fin.size:
            k_fin = seg_idx[fin]
            makespan[fin] += cum_w[K] - cum_w[k_fin]
            completed[fin] += cum_s[K] - cum_s[k_fin]
            seg_idx[fin] = K

        fail = active[~finished]
        if fail.size:
            j_fail = j[~finished]
            k_fail = seg_idx[fail]
            b_fail = budget[~finished]
            # The whole VM tenure counts toward makespan; only the hours
            # past the last durable checkpoint are wasted.
            makespan[fail] += b_fail + restart_latency
            completed[fail] += cum_s[j_fail] - cum_s[k_fail]
            wasted[fail] += b_fail - (cum_w[j_fail] - cum_w[k_fail])
            restarts[fail] += 1
            seg_idx[fail] = j_fail

        active = fail
        n_rounds += 1

    return makespan, wasted, completed, restarts, n_rounds


def simulate_job_attempts_vectorized(
    dist: LifetimeDistribution,
    job_length: float,
    start_ages: np.ndarray,
    *,
    reuse: np.ndarray | None = None,
    restart_latency: float = 0.0,
    rng: np.random.Generator,
    max_rounds: int = 10_000,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Batched uncheckpointed job attempts under the Eq. 8 reuse decision.

    The scheduling scenario of Figs. 5/6 and the service's placement
    path: replication ``i``'s job (length ``job_length`` hours, no
    checkpoints) is offered a VM of age ``start_ages[i]``.  If
    ``reuse[i]`` is True the job runs on the aged VM (its lifetime
    conditioned on survival to that age); otherwise it starts on a fresh
    VM.  A preemption loses *all* progress and the job restarts from
    scratch on a fresh VM in the next round, until it completes.

    ``reuse`` is the boolean output of a batch decision function (e.g.
    :meth:`repro.policies.scheduling.ModelReusePolicy.decide_batch`);
    ``None`` means "always reuse" — the memoryless baseline.

    Returns the same ``(makespan, wasted_hours, completed_work,
    n_restarts, n_rounds)`` tuple as :func:`simulate_plan_vectorized`;
    ``n_restarts > 0`` marks the replications whose *first* attempt was
    preempted, so its mean is the Monte-Carlo job failure probability.
    The draw protocol is the shared round protocol, so the event backend
    (via :func:`repro.sim.backend.run_replications` with a single
    segment) reproduces the outcomes for an identical generator state.
    """
    ages = np.asarray(start_ages, dtype=float)
    effective = ages if reuse is None else np.where(np.asarray(reuse, bool), ages, 0.0)
    return simulate_plan_vectorized(
        dist,
        np.asarray([float(job_length)]),
        delta=0.0,
        start_age=effective,
        restart_latency=restart_latency,
        n_replications=ages.size,
        rng=rng,
        max_rounds=max_rounds,
    )


class _LockstepKernel:
    """Structure-of-arrays core shared by the lockstep event kernels.

    The cluster, service, and tenancy kernels (and, through
    :meth:`_launch_segment`, the DP plan walker in
    :mod:`repro.sim.checkpoint_vectorized`) all advance N replications
    together over event rounds.  This base class owns the parts that
    *are* the cross-backend contract, in one place:

    * the fused :class:`EventArena` (one ``(n, C)`` time table + one
      sequence table; subclasses declare channels via
      ``_arena_channels()`` and get attribute-bound slice views via
      ``_ARENA_BINDINGS``);
    * :meth:`_select_events` — per-round earliest-event selection with
      ``(time, insertion sequence)`` tie-breaking, exactly the event
      harness's heap order, plus the event-budget and deadlock guards;
    * :meth:`_launch_segment` / :meth:`_clear_segment` — segment
      durations and finality exactly as ``JobExecution`` clips them
      (``checkpoint="dp"`` mode delegates the take to the walker);
    * :meth:`_oldest` — VM ordering by ``(launch, birth)`` exactly as
      ``free_nodes()`` sorts.

    Subclasses provide the array state (``now``, ``evseq``, ``launch``,
    ``birth``, ``sstart``, ``ctime``, ``cseq``, ``seg_take``,
    ``seg_after``, ``events``, ``max_events``, ``S``), a ``cfg`` with
    ``checkpoint_interval`` / ``checkpoint_cost``, and ``dp`` — a
    :class:`~repro.sim.checkpoint_vectorized.DPPlanWalker` in
    ``checkpoint="dp"`` mode, else ``None``.
    """

    #: arena channel name -> (times attribute, seqs attribute).  A
    #: subclass binds only the channels its ``_arena_channels()``
    #: declares; extra map entries are inert.
    _ARENA_BINDINGS: dict[str, tuple[str, str]] = {
        "death": ("death", "dseq"),
        "comp": ("ctime", "cseq"),
        "boot": ("btime", "bseq"),
        "reap": ("reap_time", "reap_seq"),
    }

    #: Sweep name and workload noun used in the guard error messages.
    _sweep_name = "lockstep"
    _budget_what = "bag"

    #: Per-run metrics registry, or ``None`` when instrumentation is
    #: off.  Every counting site is gated on this being non-``None`` —
    #: the zero-overhead-when-off contract — and no site consumes an
    #: RNG draw or writes simulation state (draw neutrality, pinned by
    #: the on/off byte-identity tests).
    obs = None

    def _sample_obs(self, active: np.ndarray) -> None:
        """Round-start diagnostic sampling: queue depth, pool occupancy.

        Sampling points are backend-local (the event oracle samples at
        queue insertions and boots instead), so these gauges are
        diagnostics, not part of the cross-backend exactness contract.
        """
        if self.obs is None or not active.size:
            return
        self.obs.gauge("queue.peak_depth").set(
            int(np.isfinite(self.qkey[active]).sum(axis=1).max())
        )
        al = self.alive[active]
        vp = self.vm_pool[active]
        for p in range(self.nP):
            self.obs.gauge(f"pool.occupancy.{p}").set(
                int((al & (vp == p)).sum(axis=1).max())
            )

    def _arena_channels(self) -> list[tuple[str, int]]:
        raise NotImplementedError

    def _init_arena(self, n: int) -> None:
        """Build the fused event table and bind the channel views."""
        self._ev = EventArena(n, self._arena_channels())
        for name in self._ev.spans:
            t_attr, s_attr = self._ARENA_BINDINGS[name]
            t_view, s_view = self._ev.channel(name)
            setattr(self, t_attr, t_view)
            setattr(self, s_attr, s_view)

    def _select_events(self, active: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Budget-checked earliest-event pick; advances ``now``/``events``."""
        if np.any(self.events[active] >= self.max_events):
            raise RuntimeError(
                f"{active.size} replications unfinished after "
                f"{self.max_events} events; the {self._budget_what} cannot "
                "finish under this lifetime law / configuration"
            )
        tmin, pick = self._ev.select(active)
        if not np.all(np.isfinite(tmin)):
            raise RuntimeError(
                f"{self._sweep_name} sweep deadlocked: a replication "
                "has pending work but no pending events"
            )
        self.now[active] = tmin
        self.events[active] += 1
        return tmin, pick

    def _launch_segment(self, rr: np.ndarray, jj: np.ndarray, left: np.ndarray) -> None:
        """Schedule the next segment of ``left`` remaining attempt hours."""
        if self.dp is not None:
            take = self.dp.next_take(rr, jj, left)
        else:
            tau = self.cfg.checkpoint_interval
            take = left if tau is None else np.minimum(tau, left)
        after = left - take
        final = after <= _RESIDUAL
        dur = take + np.where(final, 0.0, self.cfg.checkpoint_cost)
        self.sstart[rr, jj] = self.now[rr]
        self.ctime[rr, jj] = self.now[rr] + dur
        self.cseq[rr, jj] = self.evseq[rr]
        self.evseq[rr] += 1
        self.seg_take[rr, jj] = take
        self.seg_after[rr, jj] = after

    def _clear_segment(self, rr: np.ndarray, jj: np.ndarray) -> None:
        """Cancel job ``jj``'s pending segment-completion event.

        The single exit point matching :meth:`_launch_segment`'s entry:
        kernels that mirror pending completions into auxiliary state
        (the tenancy kernel's compact running slots) hook both.
        """
        self.ctime[rr, jj] = np.inf
        self.cseq[rr, jj] = _SEQ_INF

    def _oldest(
        self, mask: np.ndarray, rr: np.ndarray, rank: np.ndarray | None = None
    ) -> np.ndarray:
        """Column order by (pool rank, launch, birth), non-``mask`` last.

        ``rank`` — optional per-(row, column) allocator rank aligned
        with ``self.launch[rr]`` — becomes the *primary* key via a third
        stable argsort pass; ``None`` (or an all-equal rank, i.e. a
        single pool) reduces exactly to the historical ``(launch,
        birth)`` ``free_nodes()`` order.
        """
        lm = np.where(mask, self.launch[rr], np.inf)
        bm = np.where(mask, self.birth[rr], np.iinfo(np.int64).max)
        by_birth = np.argsort(bm, axis=1, kind="stable")
        l_sorted = np.take_along_axis(lm, by_birth, axis=1)
        by_launch = np.argsort(l_sorted, axis=1, kind="stable")
        order = np.take_along_axis(by_birth, by_launch, axis=1)
        if rank is None:
            return order
        km = np.where(mask, rank, np.iinfo(np.int64).max)
        k_sorted = np.take_along_axis(km, order, axis=1)
        by_rank = np.argsort(k_sorted, axis=1, kind="stable")
        return np.take_along_axis(order, by_rank, axis=1)

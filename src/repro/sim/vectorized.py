"""Batched (array-shaped) Monte-Carlo kernels for replication sweeps.

The event-driven :class:`repro.sim.engine.Simulator` pays Python-level
heap and callback costs for *every* segment of *every* replication, so a
10k-replication sweep is dominated by interpreter dispatch even though
the per-replication logic — sample a lifetime, walk a checkpoint plan,
accumulate wasted/useful hours — is embarrassingly parallel.  This
module hoists that inner loop into NumPy: all N replications advance
together as flat arrays, and the restart-until-done kernel iterates in
"rounds" (one VM acquisition per round) over only the still-unfinished
replications.

Draw protocol (the determinism contract shared with the event backend)
-----------------------------------------------------------------------
Round ``r`` draws one uniform vector ``u_r = rng.random(n)`` from the
single generator; replication ``i``'s ``r``-th VM lifetime comes from
``u_r[i]`` by inverse-transform sampling through the distribution's
cached PPF table.  Finished replications keep (and discard) their column
so that column ``i`` is a function of ``(seed, i, r)`` alone — never of
the progress of *other* replications.  Rounds are drawn only while at
least one replication is unfinished.  The event backend consumes the
same generator through the same protocol, which is what makes the two
backends bit-compatible for identical seeds (see
:mod:`repro.sim.backend`).

Execution semantics (identical to the event-driven reference)
-------------------------------------------------------------
A replication runs ``segments`` in order; every non-final segment is
followed by a ``delta``-hour checkpoint write.  The first VM's lifetime
is conditioned on survival to ``start_age``; if the VM dies before the
current segment (plus its checkpoint) finishes, all progress since the
last checkpoint is lost, ``restart_latency`` hours are charged, and the
replication resumes from its last checkpoint on a fresh VM in the next
round.  Ties favour completion: a VM that dies *exactly* at a segment
boundary completes the segment.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import LifetimeDistribution

__all__ = [
    "conditional_quantiles",
    "sample_lifetimes",
    "simulate_plan_vectorized",
    "simulate_job_attempts_vectorized",
]


def conditional_quantiles(u, cdf_at_age):
    """Map uniforms to quantiles of ``T | T > age`` given ``F(age)``.

    ``q = F(s) + u * (1 - F(s))``, clamped to 1 against floating-point
    overshoot.  ``cdf_at_age`` may be a scalar (one conditioning age for
    the whole batch) or an array aligned with ``u`` (per-replication
    ages).  Both backends use this exact expression so conditioned
    first-VM draws agree bit-for-bit.
    """
    u_arr = np.asarray(u, dtype=float)
    cdf_arr = np.asarray(cdf_at_age, dtype=float)
    out = np.minimum(cdf_arr + u_arr * (1.0 - cdf_arr), 1.0)
    return out if out.ndim else float(out)


def sample_lifetimes(
    dist: LifetimeDistribution,
    n: int,
    rng: np.random.Generator,
    *,
    start_age: float = 0.0,
) -> np.ndarray:
    """Draw ``n`` lifetimes conditioned on survival to ``start_age``.

    One vectorised inverse-CDF pass: ``ppf(F(s) + U (1 - F(s)))``.  With
    ``start_age = 0`` this is plain inverse-transform sampling.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if start_age < 0.0:
        raise ValueError(f"start_age must be >= 0, got {start_age}")
    F_s = float(np.asarray(dist.cdf(start_age), dtype=float)) if start_age > 0.0 else 0.0
    q = conditional_quantiles(rng.random(n), F_s)
    return np.asarray(dist.ppf(q), dtype=float)


def simulate_plan_vectorized(
    dist: LifetimeDistribution,
    segments: np.ndarray,
    *,
    delta: float,
    start_age: float,
    restart_latency: float,
    n_replications: int,
    rng: np.random.Generator,
    max_rounds: int = 10_000,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Restart-until-done kernel over N independent replications.

    Returns ``(makespan, wasted_hours, completed_work, n_restarts,
    n_rounds)`` — per-replication arrays plus the number of rounds (VM
    generations) the batch needed.  Argument validation lives in
    :func:`repro.sim.backend.run_replications`; this kernel assumes
    positive segments and non-negative ``delta``/``start_age``/latency.

    ``start_age`` may be a scalar (every replication's first VM has the
    same age) or an array of shape ``(n_replications,)`` — the shape the
    policy-evaluation layer uses, where each replication's job lands on
    a VM of a different sampled age.  Either way, the first VM's
    lifetime is conditioned on survival to its replication's age and
    replacement VMs are fresh.

    The per-round walk is closed-form: with ``cum_w`` the cumulative
    wall-clock of the plan (segment + checkpoint durations), a VM that
    grants ``budget`` hours starting from segment ``k`` completes through
    segment ``j-1`` where ``j = searchsorted(cum_w, cum_w[k] + budget,
    'right') - 1`` — a single O(N log K) pass instead of a Python loop
    over segments.
    """
    segs = np.asarray(segments, dtype=float)
    K = segs.size
    durations = segs.copy()
    if K > 1:
        durations[:-1] += delta
    # cum_w[j]: wall-clock hours to durably finish the first j segments
    # (each non-final one including its checkpoint write); cum_s[j]: the
    # corresponding durable *work* hours.
    cum_w = np.concatenate(([0.0], np.cumsum(durations)))
    cum_s = np.concatenate(([0.0], np.cumsum(segs)))

    n = int(n_replications)
    makespan = np.zeros(n)
    wasted = np.zeros(n)
    completed = np.zeros(n)
    restarts = np.zeros(n, dtype=np.int64)
    seg_idx = np.zeros(n, dtype=np.int64)  # next segment to (re)run
    active = np.arange(n)

    start_arr = np.asarray(start_age, dtype=float)
    per_rep_ages = start_arr.ndim > 0
    F_s = np.asarray(dist.cdf(start_arr), dtype=float)
    if not per_rep_ages:
        F_s = float(F_s)
    n_rounds = 0
    while active.size:
        if n_rounds >= max_rounds:
            raise RuntimeError(
                f"{active.size} replications unfinished after {max_rounds} "
                "rounds; schedule cannot finish under this lifetime law"
            )
        u = rng.random(n)  # full-width row: the draw protocol (see module doc)
        ua = u[active]
        if n_rounds == 0:
            F_a = F_s[active] if per_rep_ages else F_s
            death = np.asarray(dist.ppf(conditional_quantiles(ua, F_a)), dtype=float)
            age = start_arr[active] if per_rep_ages else float(start_arr)
        else:
            death = np.asarray(dist.ppf(ua), dtype=float)
            age = 0.0
        # The PPF table can land epsilon below the conditioning age.
        budget = np.maximum(death - age, 0.0)

        k = seg_idx[active]
        j = np.searchsorted(cum_w, cum_w[k] + budget, side="right") - 1
        finished = j >= K

        fin = active[finished]
        if fin.size:
            k_fin = seg_idx[fin]
            makespan[fin] += cum_w[K] - cum_w[k_fin]
            completed[fin] += cum_s[K] - cum_s[k_fin]
            seg_idx[fin] = K

        fail = active[~finished]
        if fail.size:
            j_fail = j[~finished]
            k_fail = seg_idx[fail]
            b_fail = budget[~finished]
            # The whole VM tenure counts toward makespan; only the hours
            # past the last durable checkpoint are wasted.
            makespan[fail] += b_fail + restart_latency
            completed[fail] += cum_s[j_fail] - cum_s[k_fail]
            wasted[fail] += b_fail - (cum_w[j_fail] - cum_w[k_fail])
            restarts[fail] += 1
            seg_idx[fail] = j_fail

        active = fail
        n_rounds += 1

    return makespan, wasted, completed, restarts, n_rounds


def simulate_job_attempts_vectorized(
    dist: LifetimeDistribution,
    job_length: float,
    start_ages: np.ndarray,
    *,
    reuse: np.ndarray | None = None,
    restart_latency: float = 0.0,
    rng: np.random.Generator,
    max_rounds: int = 10_000,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Batched uncheckpointed job attempts under the Eq. 8 reuse decision.

    The scheduling scenario of Figs. 5/6 and the service's placement
    path: replication ``i``'s job (length ``job_length`` hours, no
    checkpoints) is offered a VM of age ``start_ages[i]``.  If
    ``reuse[i]`` is True the job runs on the aged VM (its lifetime
    conditioned on survival to that age); otherwise it starts on a fresh
    VM.  A preemption loses *all* progress and the job restarts from
    scratch on a fresh VM in the next round, until it completes.

    ``reuse`` is the boolean output of a batch decision function (e.g.
    :meth:`repro.policies.scheduling.ModelReusePolicy.decide_batch`);
    ``None`` means "always reuse" — the memoryless baseline.

    Returns the same ``(makespan, wasted_hours, completed_work,
    n_restarts, n_rounds)`` tuple as :func:`simulate_plan_vectorized`;
    ``n_restarts > 0`` marks the replications whose *first* attempt was
    preempted, so its mean is the Monte-Carlo job failure probability.
    The draw protocol is the shared round protocol, so the event backend
    (via :func:`repro.sim.backend.run_replications` with a single
    segment) reproduces the outcomes for an identical generator state.
    """
    ages = np.asarray(start_ages, dtype=float)
    effective = ages if reuse is None else np.where(np.asarray(reuse, bool), ages, 0.0)
    return simulate_plan_vectorized(
        dist,
        np.asarray([float(job_length)]),
        delta=0.0,
        start_age=effective,
        restart_latency=restart_latency,
        n_replications=ages.size,
        rng=rng,
        max_rounds=max_rounds,
    )

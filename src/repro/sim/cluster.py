"""Slurm-like cluster manager.

The paper's service drives a Slurm cluster whose "cloud" nodes are
preemptible VMs; Slurm handles node loss and reports job completions and
failures back to the controller via callbacks.  This module reproduces
that contract:

* a node registry (VMs join and leave as they launch and die),
* a FIFO job queue with gang scheduling (a job occupies ``width`` nodes
  at once; MPI semantics — losing any node aborts the attempt),
* pluggable *node selection* and *checkpoint planning* hooks, through
  which the service controller injects the Section 4 policies,
* a scheduler/allocator plugin pair (:mod:`repro.sim.placement`,
  following accasim's ``scheduler_class`` / ``allocator_class`` split):
  the scheduler fixes the queue discipline (FIFO / keyed / backfill),
  the allocator fixes the *placement order* of free nodes over a
  heterogeneous pool catalog,
* completion / failure callbacks (the "Slurm call-backs" of Fig. 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.sim.engine import Simulator
from repro.sim.events import EventLog, JobCompleted, JobFailed, JobStarted
from repro.sim.placement import (
    Allocator,
    BackfillScheduler,
    FifoScheduler,
    KeyedScheduler,
    PoolSpec,
    Scheduler,
    make_allocator,
    make_scheduler,
)
from repro.sim.runner import JobExecution
from repro.sim.vm import SimVM
from repro.utils.validation import check_positive

__all__ = ["JobState", "SimJob", "ClusterManager"]


class JobState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"


@dataclass
class SimJob:
    """A batch job: ``work_hours`` of computation on ``width`` gang nodes.

    ``progress_hours`` tracks checkpointed work; after a preemption the
    job resumes from there.
    """

    job_id: int
    work_hours: float
    width: int = 1
    bag_id: int | None = None
    submit_time: float = 0.0
    state: JobState = JobState.PENDING
    progress_hours: float = 0.0
    attempts: int = 0
    failures: int = 0
    start_time: float | None = None
    finish_time: float | None = None

    def __post_init__(self) -> None:
        check_positive("work_hours", self.work_hours)
        if self.width < 1:
            raise ValueError(f"width must be >= 1, got {self.width}")

    @property
    def remaining_hours(self) -> float:
        return max(self.work_hours - self.progress_hours, 0.0)

    @property
    def makespan(self) -> float | None:
        """Submission-to-completion wall time, once finished."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.submit_time


# Hook signatures ------------------------------------------------------
#: Given (job, free VMs) return the VMs to run on, or None to defer
#: (e.g. because new VMs should be launched instead).
NodeSelector = Callable[[SimJob, Sequence[SimVM]], "list[SimVM] | None"]
#: Given (job, age of the oldest selected VM) return checkpoint segments
#: (hours of work between checkpoints) or None for no checkpointing.
CheckpointPlanner = Callable[[SimJob, float], "list[float] | None"]


def _default_selector(job: SimJob, free: Sequence[SimVM]) -> list[SimVM] | None:
    if len(free) < job.width:
        return None
    return list(free[: job.width])


def _no_checkpoints(job: SimJob, start_age: float) -> list[float] | None:
    return None


class ClusterManager:
    """FIFO gang scheduler over a dynamic pool of preemptible nodes.

    Head-of-line semantics
    ----------------------
    The queue is strict FIFO by default: when the selector cannot place
    the *head* job (e.g. a wide gang waiting for nodes), no job behind it
    starts either, exactly like Slurm's default FIFO scheduler — a stuck
    wide job blocks arbitrarily narrow ones (pinned by
    ``tests/test_cluster_scheduling.py``).  Pass ``backfill=True`` for
    opportunistic backfill: jobs behind a stuck head may start on nodes
    the head cannot use.  This is *unreserved* backfill (no start-time
    guarantee for the head), so a steady stream of narrow jobs can starve
    a wide one; callers that need fairness must throttle submissions.

    ``on_queue_stalled`` fires once per scheduling pass for the stuck
    head job (regardless of how many nodes are free — a selector that
    returns an empty list stalls the head just like ``None``).

    Placement plugins
    -----------------
    The queue discipline and the free-node placement order are plugins
    (:mod:`repro.sim.placement`).  ``scheduler`` subsumes the legacy
    ``backfill`` flag and :meth:`enable_keyed_queue` (both kept as
    compat shims); ``allocator`` + ``pools`` order idle nodes by the
    allocator's pool ranking before age, so gangs grab (and stalled
    queues evict) nodes pool-rank-first over a heterogeneous fleet.
    """

    #: Optional :class:`repro.obs.MetricsRegistry`.  ``None`` (the class
    #: default) keeps scheduling paths instrumentation-free; when set,
    #: the manager records the peak queue depth seen at insertion time.
    obs = None

    def __init__(
        self,
        sim: Simulator,
        *,
        log: EventLog | None = None,
        node_selector: NodeSelector = _default_selector,
        checkpoint_planner: CheckpointPlanner = _no_checkpoints,
        checkpoint_cost: float = 1.0 / 60.0,
        backfill: bool = False,
        scheduler: Scheduler | str | None = None,
        allocator: Allocator | str | None = None,
        pools: "Sequence[PoolSpec] | None" = None,
    ):
        self.sim = sim
        self.log = log if log is not None else EventLog()
        self.node_selector = node_selector
        self.checkpoint_planner = checkpoint_planner
        self.checkpoint_cost = checkpoint_cost
        if scheduler is None:
            scheduler = BackfillScheduler() if backfill else FifoScheduler()
        else:
            scheduler = make_scheduler(scheduler)
        self.scheduler = scheduler
        self.backfill = scheduler.backfill
        self.allocator = make_allocator(allocator)
        self.pools = None if pools is None else tuple(pools)
        self._keyed = scheduler.keyed
        self._requeue_key = -1.0
        self._submit_seq = 0
        self._free: dict[int, SimVM] = {}
        self._busy: dict[int, SimVM] = {}
        self._queue: list[SimJob] = []
        self._executions: dict[int, JobExecution] = {}
        self.completed: list[SimJob] = []
        #: external callbacks: fired after internal state updates.
        self.on_job_complete: list[Callable[[SimJob], None]] = []
        self.on_job_failed: list[Callable[[SimJob, SimVM], None]] = []
        self.on_node_idle: list[Callable[[SimVM], None]] = []
        self.on_queue_stalled: list[Callable[[SimJob, int], None]] = []

    # -- node registry --------------------------------------------------
    def add_node(self, vm: SimVM) -> None:
        """Register a running VM as a schedulable node."""
        if not vm.alive:
            raise ValueError(f"VM {vm.vm_id} is not running")
        vm.on_preempt.append(self._node_preempted)
        self._free[vm.vm_id] = vm
        self.try_schedule()

    def remove_node(self, vm: SimVM) -> None:
        """Deregister an idle node (e.g. hot-spare expiry)."""
        if vm.vm_id in self._busy:
            raise ValueError(f"VM {vm.vm_id} is busy; cannot remove")
        self._free.pop(vm.vm_id, None)

    def free_nodes(self, job: SimJob | None = None) -> list[SimVM]:
        """Idle registered nodes in placement order.

        Single pool (or no catalog): oldest launch first, the historical
        stable order.  With a multi-pool catalog the allocator's pool
        ranking is the primary key — refined per tenant when ``job``
        carries one — so selection, eviction, and hot-spare substitution
        all walk pools best-first.
        """
        vms = self._free.values()
        if self.pools is None or len(self.pools) <= 1:
            return sorted(vms, key=lambda v: (v.launch_time, v.vm_id))
        tenant = getattr(job, "tenant", None) if job is not None else None
        rank = self.allocator.rank_for(self.pools, tenant)
        rank_of = {p: i for i, p in enumerate(rank)}
        return sorted(
            vms, key=lambda v: (rank_of[v.pool], v.launch_time, v.vm_id)
        )

    def busy_nodes(self) -> list[SimVM]:
        return sorted(self._busy.values(), key=lambda v: v.vm_id)

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def queue_head(self) -> SimJob | None:
        """The job next in line (None when the queue is empty)."""
        return self._queue[0] if self._queue else None

    # -- job queue --------------------------------------------------------
    def enable_keyed_queue(self) -> None:
        """Switch the queue from FIFO to priority-key order.

        Queued jobs are kept in ascending ``job.queue_key`` order (FIFO
        among equal keys); requeued preempted jobs receive decreasing
        negative keys, preserving the requeue-at-head contract.  Jobs
        submitted without a key get their submission index, so a purely
        unkeyed workload still behaves FIFO.  The multi-tenant service
        front end (:mod:`repro.traffic.multitenant`) uses this to run
        its inter-tenant scheduling policies through the unmodified
        gang-scheduling core.  Must be enabled while the queue is empty.

        Compat shim for constructing with
        ``scheduler=KeyedScheduler()`` (the plugin spelling).
        """
        if self._queue:
            raise RuntimeError("cannot enable keyed queueing on a non-empty queue")
        self.scheduler = KeyedScheduler()
        self._keyed = True

    def submit(self, job: SimJob) -> None:
        if job.state is not JobState.PENDING:
            raise ValueError(f"job {job.job_id} is {job.state.value}")
        job.submit_time = self.sim.now if job.submit_time == 0.0 else job.submit_time
        if self._keyed:
            key = getattr(job, "queue_key", None)
            if key is None:
                key = float(self._submit_seq)
                job.queue_key = key  # type: ignore[attr-defined]
            self._submit_seq += 1
            idx = len(self._queue)
            while idx > 0 and getattr(self._queue[idx - 1], "queue_key") > key:
                idx -= 1
            self._queue.insert(idx, job)
        else:
            self._queue.append(job)
        if self.obs is not None:
            self.obs.gauge("queue.peak_depth").set(len(self._queue))
        self.try_schedule()

    def try_schedule(self) -> None:
        """Start queued jobs while the selector yields node sets (FIFO).

        Strict FIFO stops at the first job the selector cannot place
        (head-of-line blocking); with ``backfill`` the scan continues
        past stuck jobs.  ``on_queue_stalled`` fires for the stuck head
        whether the selector deferred with ``None`` or an empty list —
        callbacks may register nodes (recursing into this method), in
        which case the scan restarts from the new head.
        """
        scan = 0
        while scan < len(self._queue):
            job = self._queue[scan]
            free = self.free_nodes(job)
            selected = self.node_selector(job, free)
            if not selected:
                if scan == 0:
                    for cb in list(self.on_queue_stalled):
                        cb(job, len(free))
                    if self._queue and self._queue[0] is not job:
                        # A callback unblocked the head (e.g. by adding
                        # nodes, which recurses here); rescan from the top.
                        scan = 0
                        continue
                if not self.backfill:
                    return
                scan += 1
                continue
            if len(selected) != job.width:
                raise RuntimeError(
                    f"selector returned {len(selected)} nodes for width {job.width}"
                )
            self._queue.pop(scan)
            self._start(job, selected)
            # No scan reset: the pool only shrank, so jobs already skipped
            # over cannot have become startable; the next queued job has
            # shifted into this index.

    def _start(self, job: SimJob, vms: list[SimVM]) -> None:
        for vm in vms:
            self._free.pop(vm.vm_id)
            self._busy[vm.vm_id] = vm
        job.state = JobState.RUNNING
        job.attempts += 1
        if job.start_time is None:
            job.start_time = self.sim.now
        oldest_age = max(vm.age(self.sim.now) for vm in vms)
        segments = self.checkpoint_planner(job, oldest_age)
        execution = JobExecution(
            sim=self.sim,
            job=job,
            vms=vms,
            segments=segments,
            checkpoint_cost=self.checkpoint_cost,
            log=self.log,
            on_complete=self._job_completed,
            on_abort=self._job_aborted,
        )
        self._executions[job.job_id] = execution
        self.log.record(
            JobStarted(time=self.sim.now, job_id=job.job_id, vm_ids=tuple(v.vm_id for v in vms))
        )
        execution.begin()

    # -- execution callbacks ---------------------------------------------
    def _release(self, vms: Sequence[SimVM]) -> None:
        for vm in vms:
            self._busy.pop(vm.vm_id, None)
            if vm.alive:
                self._free[vm.vm_id] = vm
                for cb in list(self.on_node_idle):
                    cb(vm)

    def _job_completed(self, job: SimJob, vms: Sequence[SimVM]) -> None:
        job.state = JobState.COMPLETED
        job.finish_time = self.sim.now
        self._executions.pop(job.job_id, None)
        self.completed.append(job)
        self.log.record(
            JobCompleted(
                time=self.sim.now, job_id=job.job_id, makespan_hours=job.makespan or 0.0
            )
        )
        self._release(vms)
        for cb in list(self.on_job_complete):
            cb(job)
        self.try_schedule()

    def _job_aborted(self, job: SimJob, vms: Sequence[SimVM], dead_vm: SimVM, lost: float) -> None:
        job.state = JobState.PENDING
        job.failures += 1
        self._executions.pop(job.job_id, None)
        self.log.record(
            JobFailed(time=self.sim.now, job_id=job.job_id, vm_id=dead_vm.vm_id, lost_hours=lost)
        )
        # Failed job returns to the head of the queue (it was oldest);
        # under keyed queueing it gets the next decreasing negative key
        # so later submissions cannot outrank it.
        if self._keyed:
            job.queue_key = self._requeue_key  # type: ignore[attr-defined]
            self._requeue_key -= 1.0
        self._queue.insert(0, job)
        if self.obs is not None:
            self.obs.gauge("queue.peak_depth").set(len(self._queue))
        # Release the whole gang: the dead VM leaves the busy set, the
        # survivors return to the free pool.
        self._release(vms)
        for cb in list(self.on_job_failed):
            cb(job, dead_vm)
        self.try_schedule()

    def _node_preempted(self, vm: SimVM, now: float) -> None:
        if vm.vm_id in self._free:
            self._free.pop(vm.vm_id)
            return
        if vm.vm_id in self._busy:
            # The execution owning this VM handles the abort.
            for execution in list(self._executions.values()):
                if any(v.vm_id == vm.vm_id for v in execution.vms):
                    execution.abort(vm)
                    return

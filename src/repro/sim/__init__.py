"""Discrete-event simulation substrate.

Replaces the paper's live Google Cloud deployment:

* :mod:`repro.sim.engine` -- event-heap simulator core,
* :mod:`repro.sim.events` -- typed event records + event log,
* :mod:`repro.sim.rng` -- hierarchical seeded random streams,
* :mod:`repro.sim.cloud` -- the cloud provider (launch/preempt/bill),
* :mod:`repro.sim.vm` -- VM lifecycle state machine,
* :mod:`repro.sim.cluster` -- Slurm-like cluster manager with
  completion/failure callbacks,
* :mod:`repro.sim.runner` -- job execution with checkpoint/restart,
* :mod:`repro.sim.vectorized` -- batched NumPy Monte-Carlo kernels,
* :mod:`repro.sim.cluster_vectorized` -- lockstep gang-scheduling
  kernel for whole-cluster replication sweeps,
* :mod:`repro.sim.service_vectorized` -- lockstep full-service kernel
  (provisioning latency, master billing, bag estimation, backfill),
* :mod:`repro.sim.tenancy_vectorized` -- lockstep multi-tenant traffic
  kernel (bag arrivals, inter-tenant scheduling, admission, elastic
  fleet sizing),
* :mod:`repro.sim.backend` -- event/vectorized backend selection for
  single-job, cluster, service, and tenant replication sweeps (see
  README.md in this package).

Time unit is **hours** throughout, matching the modeling layer.
"""

from repro.sim.backend import (
    ClusterOutcomes,
    ReplicationOutcomes,
    ServiceOutcomes,
    TenantOutcomes,
    run_cluster_replications,
    run_replications,
    run_service_replications,
    run_tenant_replications,
)
from repro.sim.cluster_vectorized import ClusterConfig, GangJob
from repro.sim.service_vectorized import ServiceBatchConfig
from repro.sim.tenancy_vectorized import BagSubmission, TenancyConfig
from repro.sim.engine import Simulator
from repro.sim.events import (
    EventLog,
    JobCompleted,
    JobFailed,
    JobStarted,
    VMLaunched,
    VMPreempted,
    VMTerminated,
)
from repro.sim.rng import RandomStreams
from repro.sim.cloud import CloudProvider
from repro.sim.vm import SimVM, VMState
from repro.sim.cluster import ClusterManager, SimJob

__all__ = [
    "BagSubmission",
    "ClusterConfig",
    "ClusterOutcomes",
    "GangJob",
    "ReplicationOutcomes",
    "ServiceBatchConfig",
    "ServiceOutcomes",
    "TenancyConfig",
    "TenantOutcomes",
    "run_cluster_replications",
    "run_replications",
    "run_service_replications",
    "run_tenant_replications",
    "Simulator",
    "EventLog",
    "JobCompleted",
    "JobFailed",
    "JobStarted",
    "VMLaunched",
    "VMPreempted",
    "VMTerminated",
    "RandomStreams",
    "CloudProvider",
    "SimVM",
    "VMState",
    "ClusterManager",
    "SimJob",
]

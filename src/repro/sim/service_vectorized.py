"""Batched end-to-end service kernel: N full controller runs in lockstep.

:mod:`repro.sim.cluster_vectorized` batches a *pre-booted* cluster;
this module batches the paper's complete Section 5 **service** — the
behaviour of :class:`repro.service.controller.BatchComputingService`
driving a :class:`~repro.sim.cluster.ClusterManager` on a simulated
cloud — so Fig. 9-style sweeps (cost-reduction factor, master billing,
provisioning latency) run at 10k+ replications.  The event-driven
reference is :func:`repro.sim.backend.run_service_replications` with
``backend="event"``, which instantiates the *real* controller per
replication; the cross-backend service equivalence suite pins the two
to 1e-9 hours with exact event/draw/preemption counts.

What the kernel reproduces, event for event
-------------------------------------------
* **Lazy deficit provisioning.**  The service starts with zero workers.
  Whenever the queue head stalls, the controller launches
  ``min(width - suitable - provisioning, max_vms - alive -
  provisioning)`` fresh workers, each joining the free pool
  ``provision_latency`` hours later (a scheduled boot event that draws
  the VM's lifetime at fire time).
* **Eq. 8 filtering on the bag estimate.**  Node selection and stall
  handling use the *bag-level runtime estimate*
  (:meth:`BatchComputingService._estimate_length`): the trailing
  sequential-sum mean of the last ``estimate_window`` completed
  members' declared hours, starting from the first job's declaration.
  Both backends compute the identical float sequence
  (:meth:`repro.service.bag.BagOfJobs.estimated_runtime`).
* **Terminate-all-unsuitable stalls.**  When the head stalls with the
  reuse policy on, every Eq. 8-rejected idle VM is terminated at once
  (the controller's ``_queue_stalled``), *then* the deficit is
  provisioned — unlike the cluster kernel's one-at-a-time refresh.
* **Idle retention (hot spare) timers.**  A VM released with an empty
  queue schedules a reap event ``hot_spare_hours`` later; the timer is
  cancelled when the VM starts work, dies, or is terminated, and the
  reap no-ops when the queue is non-empty at fire time.
* **Master billing.**  A non-preemptible master VM (no lifetime draw)
  is billed for the whole makespan when ``run_master`` is set.
* **Queue discipline.**  Strict FIFO with head-of-line blocking, or the
  controller's opt-in unreserved ``backfill``; preempted jobs requeue
  at the head; gang semantics as in the cluster kernel.
* **Checkpointing, fixed-interval or DP.**  ``checkpoint_interval``
  mirrors ``ServiceConfig.checkpoint_interval``; ``checkpoint="dp"``
  mirrors the controller's ``use_checkpointing`` mode — per-attempt
  Section 4.3 DP plans at the gang's oldest VM age, walked in batch by
  :class:`repro.sim.checkpoint_vectorized.DPPlanWalker`.

Service round protocol
----------------------
Randomness and event ordering follow the cluster round protocol
(:mod:`repro.sim.cluster_vectorized`): only worker-VM lifetimes consume
uniforms (one draw per boot *event*, in fire order; the master draws
nothing), and all pending events — VM deaths, segment completions,
worker boots, idle reaps — carry per-replication ``(time, insertion
sequence)`` keys assigned in exactly the order the event harness calls
``Simulator.schedule``, so simultaneous events resolve identically on
both backends and processed-event counts agree exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributions.base import LifetimeDistribution
from repro.policies.scheduling import ModelReusePolicy
from repro.sim.placement import PoolSpec, make_allocator, resolve_pools
from repro.sim.vectorized import _LockstepKernel, _RESIDUAL, _SEQ_INF
from repro.utils.validation import check_nonnegative, check_positive

__all__ = [
    "ProvisioningLivelockError",
    "ServiceBatchConfig",
    "simulate_service_vectorized",
]


class ProvisioningLivelockError(RuntimeError):
    """The service is churning terminate/provision cycles without progress.

    Raised — by the live :class:`~repro.service.controller.BatchComputingService`
    and by the batched service/tenancy kernels alike — when
    ``livelock_threshold`` consecutive queue-stall rounds each terminated
    policy-rejected idle workers (and provisioned replacements) without
    any job starting or completing in between.  The historical trigger —
    ``provision_latency > 0`` with the reuse policy on under lifetime
    laws whose conditional Eq. 8 criterion rejects *every* age (uniform,
    exponential — no infant-mortality window), so each staggered boot
    was rejected on evaluation, terminated, and replaced, forever — is
    resolved by the fresh-boot grace window: a worker no older than its
    pool's boot latency is always accepted, since terminating it buys a
    replacement that arrives no younger.  The guardrail remains as a
    backstop against configurations that still manage to churn.
    """




@dataclass(frozen=True)
class ServiceBatchConfig:
    """Knobs of one batched service run (see the module docstring).

    The fields mirror the policy content of
    :class:`repro.service.controller.ServiceConfig` — the layer-clean
    subset the kernel needs (no VM type / zone: prices are applied to
    the outcome arrays by the caller).
    :func:`repro.sim.backend.run_service_replications` also accepts a
    ``ServiceConfig`` directly and converts it.

    Attributes
    ----------
    max_vms:
        Worker-fleet cap; every job's width must fit.
    use_reuse_policy:
        Eq. 8 filtering (conditional criterion, like the controller) on
        node selection and stall refreshes; False = memoryless.
    hot_spare_hours:
        Idle retention window before a spare worker is reaped.
    provision_latency:
        Boot delay between launching a worker and it joining the pool.
    run_master:
        Bill a non-preemptible master for the makespan.
    backfill:
        Unreserved backfill past a stuck queue head (the
        ``ClusterManager`` flag); default strict FIFO.
    checkpoint:
        ``"interval"`` (default) — fixed-interval checkpointing per
        ``checkpoint_interval``; ``"dp"`` — per-attempt Section 4.3 DP
        plans (the controller's ``use_checkpointing`` mode), which
        requires ``checkpoint_interval`` to stay ``None``.
    checkpoint_interval:
        Fixed-interval checkpointing (hours of work per checkpoint);
        ``None`` runs each attempt as one unchecked segment.
    checkpoint_cost:
        Hours per checkpoint write.
    checkpoint_step:
        DP work-step granularity in hours (``"dp"`` mode only).
    estimate_window:
        Trailing-completion window of the bag runtime estimate
        (:class:`repro.service.bag.BagOfJobs` uses 16).
    max_attempts_per_job:
        Mirror of the controller's safety valve: a job aborting with
        this many attempts raises.
    livelock_threshold:
        Mirror of the controller's terminate/provision churn guardrail:
        this many consecutive stall rounds that terminated
        policy-rejected workers, with no job start or completion in
        between, raise :class:`ProvisioningLivelockError` on both
        backends.  Since the fresh-boot grace window (a worker no older
        than its pool's boot latency is never terminated as
        policy-rejected) resolved the documented churn pathology, the
        guardrail is a backstop, not the expected exit.
    pools:
        Optional heterogeneous pool catalog
        (:class:`~repro.sim.placement.PoolSpec` sequence); sizes must
        sum to ``max_vms``, per-pool ``boot_latency`` defaults to
        ``provision_latency``.  ``None`` keeps the historical single
        implicit pool.  Incompatible with ``checkpoint="dp"``.
    allocator:
        Pool-choice plugin name (see
        :data:`repro.sim.placement.ALLOCATORS`): where deficit boots
        land, which free VM a gang grabs first.  Single pool: all
        allocators reduce to the historical ``(launch, birth)`` order.
    """

    max_vms: int = 8
    use_reuse_policy: bool = True
    hot_spare_hours: float = 1.0
    provision_latency: float = 0.0
    run_master: bool = True
    backfill: bool = False
    checkpoint: str = "interval"
    checkpoint_interval: float | None = None
    checkpoint_cost: float = 1.0 / 60.0
    checkpoint_step: float = 0.1
    estimate_window: int = 16
    max_attempts_per_job: int = 1000
    livelock_threshold: int = 500
    pools: tuple[PoolSpec, ...] | None = None
    allocator: str = "first_fit"

    def __post_init__(self) -> None:
        check_positive("max_vms", self.max_vms)
        if self.pools is not None:
            object.__setattr__(self, "pools", tuple(self.pools))
            if self.checkpoint == "dp":
                raise ValueError(
                    "pools are incompatible with checkpoint='dp': the DP "
                    "plan table is keyed to a single lifetime law"
                )
        make_allocator(self.allocator)
        check_positive("hot_spare_hours", self.hot_spare_hours)
        check_nonnegative("provision_latency", self.provision_latency)
        if self.checkpoint not in ("interval", "dp"):
            raise ValueError(
                f"checkpoint must be 'interval' or 'dp', got {self.checkpoint!r}"
            )
        if self.checkpoint_interval is not None:
            if self.checkpoint == "dp":
                raise ValueError(
                    "checkpoint='dp' plans per attempt; leave "
                    "checkpoint_interval unset"
                )
            check_positive("checkpoint_interval", self.checkpoint_interval)
        check_nonnegative("checkpoint_cost", self.checkpoint_cost)
        check_positive("checkpoint_step", self.checkpoint_step)
        check_positive("estimate_window", self.estimate_window)
        check_positive("max_attempts_per_job", self.max_attempts_per_job)
        check_positive("livelock_threshold", self.livelock_threshold)

    @classmethod
    def from_service_config(
        cls, config, *, checkpoint_interval: float | None = None
    ) -> "ServiceBatchConfig":
        """Build from a service-layer ``ServiceConfig`` (duck-typed, so
        the sim layer never imports the service layer).

        The single mapping site for every entry point that accepts a
        ``ServiceConfig``.  ``checkpoint_interval`` overrides the
        config's own; DP checkpointing (``use_checkpointing`` with no
        fixed interval resolved) maps onto ``checkpoint="dp"`` — the
        batched DP plan walker, equivalence-pinned against the
        controller's per-attempt planner.
        """
        interval = (
            checkpoint_interval
            if checkpoint_interval is not None
            else config.checkpoint_interval
        )
        dp = config.use_checkpointing and interval is None
        return cls(
            max_vms=config.max_vms,
            use_reuse_policy=config.use_reuse_policy,
            hot_spare_hours=config.hot_spare_hours,
            provision_latency=config.provision_latency,
            run_master=config.run_master,
            backfill=config.backfill,
            checkpoint="dp" if dp else "interval",
            checkpoint_interval=interval,
            checkpoint_cost=config.checkpoint_cost,
            checkpoint_step=config.checkpoint_step,
            max_attempts_per_job=config.max_attempts_per_job,
            livelock_threshold=config.livelock_threshold,
            pools=getattr(config, "pools", None),
            allocator=getattr(config, "allocator", "first_fit"),
        )


class _ServiceKernel(_LockstepKernel):
    """Array state and phase operations of the lockstep service sweep."""

    _sweep_name = "service"

    def _arena_channels(self) -> list[tuple[str, int]]:
        return [
            ("death", self.S),
            ("comp", self.J),
            ("boot", self.B),
            ("reap", self.S),
        ]

    def __init__(
        self,
        dist: LifetimeDistribution,
        jobs,
        config: ServiceBatchConfig,
        n_replications: int,
        rng: np.random.Generator,
        max_events: int,
        obs=None,
    ):
        self.dist = dist
        self.cfg = config
        self.obs = obs
        self.n = int(n_replications)
        self.max_events = int(max_events)
        from repro.sim.backend import _RoundUniforms
        from repro.sim.checkpoint_vectorized import walker_from_config

        # Pool catalog + allocator ranking (shared with the event
        # oracle); per-pool boot latency defaults to provision_latency.
        self.pools = resolve_pools(
            config.pools,
            dist=dist,
            n_slots=config.max_vms,
            provision_latency=config.provision_latency,
        )
        self.nP = len(self.pools)
        rank = make_allocator(config.allocator).rank_for(self.pools)
        self.rank = np.asarray(rank, dtype=np.int64)
        self.rank_of = np.empty(self.nP, dtype=np.int64)
        self.rank_of[self.rank] = np.arange(self.nP)
        self.pool_sizes = np.asarray([p.size for p in self.pools], dtype=np.int64)
        self.latency = np.asarray([p.boot_latency for p in self.pools])
        # The controller always uses the survival-conditioned criterion
        # (one policy per pool: each worker is judged under its own law).
        self.policies = (
            [
                ModelReusePolicy(p.dist, criterion="conditional")
                for p in self.pools
            ]
            if config.use_reuse_policy
            else None
        )
        self.policy = self.policies[0] if self.policies is not None else None
        self.table = _RoundUniforms(rng, self.n)

        n = self.n
        S = B = config.max_vms  # worker columns / pending-boot slots
        J = len(jobs)
        self.S, self.B, self.J = S, B, J
        self.width = np.asarray([j.width for j in jobs], dtype=np.int64)
        self.work = np.asarray([j.work_hours for j in jobs], dtype=float)
        self.dp = walker_from_config(dist, config, n, self.work)

        self.now = np.zeros(n)
        self.evseq = np.zeros(n, dtype=np.int64)
        self.draw_k = np.zeros(n, dtype=np.int64)
        self.births = np.zeros(n, dtype=np.int64)
        # Fused event table: deaths, completions, boots, and reap
        # timers are channel views (see EventArena; dead columns hold
        # death == inf).  The tenancy subclass swaps the completion
        # channel for its compact running slots.
        self._init_arena(n)
        # Worker-VM columns (ordering is (pool rank, launch, birth) —
        # (launch, birth) alone with a single pool).
        self.alive = np.zeros((n, S), dtype=bool)
        self.launch = np.zeros((n, S))
        self.birth = np.full((n, S), -1, dtype=np.int64)
        self.vm_job = np.full((n, S), -1, dtype=np.int64)
        self.vm_pool = np.full((n, S), -1, dtype=np.int64)
        self.provisioning = np.zeros(n, dtype=np.int64)
        self.boot_pool = np.full((n, B), -1, dtype=np.int64)
        self.provisioning_pool = np.zeros((n, self.nP), dtype=np.int64)
        # Job state.
        self.qkey = np.broadcast_to(np.arange(J, dtype=float), (n, J)).copy()
        self.head_key = np.full(n, -1.0)  # next requeue-at-head key
        self.progress = np.zeros((n, J))
        self.sstart = np.zeros((n, J))
        self.seg_take = np.zeros((n, J))
        self.seg_after = np.zeros((n, J))
        self.attempts = np.zeros((n, J), dtype=np.int64)
        # Livelock guardrail: consecutive stall rounds that terminated
        # rejected workers with no job start/completion in between.
        self.stall_strikes = np.zeros(n, dtype=np.int64)
        # Bag runtime estimate (sequential-sum trailing mean).
        W = config.estimate_window
        self.est = np.full(n, self.work[0] if J else 0.0)
        self.buf = np.zeros((n, W))
        self.buf_pos = np.zeros(n, dtype=np.int64)
        self.buf_len = np.zeros(n, dtype=np.int64)
        # Outcomes.
        self.makespan = np.zeros(n)
        self.wasted = np.zeros(n)
        self.done_count = np.zeros(n, dtype=np.int64)
        self.failures = np.zeros(n, dtype=np.int64)
        self.preemptions = np.zeros(n, dtype=np.int64)
        self.vm_hours = np.zeros(n)
        self.pool_hours = np.zeros((n, self.nP))
        self.master_hours = np.zeros(n)
        self.events = np.zeros(n, dtype=np.int64)

    # -- pool helpers ----------------------------------------------------
    def _boot_pool(self, rr: np.ndarray, rank_rows: np.ndarray | None = None) -> np.ndarray:
        """First ranked pool with headroom (alive + in-flight boots count).

        ``rank_rows`` — optional per-row ``(R, nP)`` preference order
        (the tenancy kernel's tenant affinity); ``None`` uses the
        allocator's static ranking.  Pure function of pre-draw state.
        """
        if self.nP == 1:
            return np.zeros(rr.size, dtype=np.int64)
        occ = self.provisioning_pool[rr].copy()
        vp = self.vm_pool[rr]
        al = self.alive[rr]
        for p in range(self.nP):
            occ[:, p] += (al & (vp == p)).sum(axis=1)
        headroom = self.pool_sizes[None, :] - occ
        if rank_rows is None:
            ranked = headroom[:, self.rank]
            if not (ranked > 0).any(axis=1).all():
                raise RuntimeError("no pool headroom; fleet invariant violated")
            return self.rank[np.argmax(ranked > 0, axis=1)]
        ranked = np.take_along_axis(headroom, rank_rows, axis=1)
        if not (ranked > 0).any(axis=1).all():
            raise RuntimeError("no pool headroom; fleet invariant violated")
        first = np.argmax(ranked > 0, axis=1)
        return rank_rows[np.arange(rr.size), first]

    def _pool_ppf(self, u: np.ndarray, pool: np.ndarray) -> np.ndarray:
        """Map boot uniforms through each boot's pool's inverse CDF."""
        if self.nP == 1:
            return np.asarray(self.pools[0].dist.ppf(u), dtype=float)
        life = np.empty(u.shape)
        for p, spec in enumerate(self.pools):
            m = pool == p
            if m.any():
                life[m] = np.asarray(spec.dist.ppf(u[m]), dtype=float)
        return life

    def _rank_cols(
        self, rr: np.ndarray, jj: np.ndarray | None = None
    ) -> np.ndarray | None:
        """Allocator rank of each VM column (``None`` with one pool).

        ``jj`` is the job being placed; the base kernel's ranking is
        job-independent, the tenancy kernel refines it per tenant.
        """
        if self.nP == 1:
            return None
        vp = self.vm_pool[rr]
        return np.where(
            vp >= 0, self.rank_of[np.clip(vp, 0, None)], np.iinfo(np.int64).max
        )

    def _decide(self, rr: np.ndarray, T: np.ndarray, ages: np.ndarray) -> np.ndarray:
        """Per-pool Eq. 8 verdicts plus the fresh-boot grace window.

        A worker no older than its pool's boot latency is always
        accepted: terminating it can only buy a replacement that
        arrives *no younger* than the evicted worker is now, so the
        conditional criterion rejecting every achievable age (uniform /
        exponential laws) no longer churns terminate/provision cycles —
        the documented livelock pathology.  With zero latency the
        window adds nothing (age-0 workers are always REUSE), and under
        bathtub laws the criterion already accepts infant ages, so
        existing single-pool outcomes are unchanged.
        """
        if self.nP == 1:
            ok = self.policies[0].decide_pairs(T, ages)
            return ok | (ages <= self.latency[0])
        out = np.zeros(np.broadcast_shapes(T.shape, ages.shape), dtype=bool)
        vp = self.vm_pool[rr]
        for p, pol in enumerate(self.policies):
            m = vp == p
            if m.any():
                verdict = pol.decide_pairs(T, ages) | (ages <= self.latency[p])
                out |= m & verdict
        return out

    # -- primitive operations (all take a row-index array) --------------
    def _schedule_boots(
        self, rr: np.ndarray, k: np.ndarray, rank_rows: np.ndarray | None = None
    ) -> None:
        """Schedule ``k`` worker boots per row at ``now + pool latency``.

        Each boot picks its pool *at schedule time* (first ranked pool
        with headroom, in-flight boots included), so the boot event
        carries the pool's latency and the lifetime draw at fire time
        maps through that pool's law.
        """
        kmax = int(k.max()) if k.size else 0
        for t in range(kmax):
            live = k > t
            sub = rr[live]
            pool = self._boot_pool(
                sub, None if rank_rows is None else rank_rows[live]
            )
            empty = self.bseq[sub] == _SEQ_INF
            if not empty.any(axis=1).all():
                raise RuntimeError("no free boot slot; provisioning invariant violated")
            slot = np.argmax(empty, axis=1)
            self.btime[sub, slot] = self.now[sub] + self.latency[pool]
            self.bseq[sub, slot] = self.evseq[sub]
            self.evseq[sub] += 1
            self.boot_pool[sub, slot] = pool
            self.provisioning_pool[sub, pool] += 1
        self.provisioning[rr] += k

    def _suitability(self, rr: np.ndarray):
        """(free, suitable) masks under the bag-estimate Eq. 8 filter."""
        free = self.alive[rr] & (self.vm_job[rr] == -1)
        if self.policies is None:
            return free, free
        T = np.maximum(self.est[rr], 1e-6)
        ages = np.maximum(self.now[rr][:, None] - self.launch[rr], 0.0)
        return free, free & self._decide(rr, T[:, None], ages)

    def _head_state(self, rr: np.ndarray):
        """Queue head + suitability per row; drops queue-less rows."""
        qk = self.qkey[rr]
        head = np.argmin(qk, axis=1)
        has = qk[np.arange(rr.size), head] < np.inf
        rr, head = rr[has], head[has]
        if not rr.size:
            return rr, head, None, None, None
        free, suit = self._suitability(rr)
        return rr, head, self.width[head], suit, free

    def _start_job(self, rr: np.ndarray, jj: np.ndarray, suit: np.ndarray) -> None:
        """Start job ``jj`` on its ``width`` oldest suitable VMs per row
        (pool rank first, then launch/birth age)."""
        w = self.width[jj]
        order = self._oldest(suit, rr, self._rank_cols(rr, jj))
        pos = np.arange(self.S)[None, :] < w[:, None]
        sel = np.zeros((rr.size, self.S), dtype=bool)
        np.put_along_axis(sel, order, pos, axis=1)
        self.stall_strikes[rr] = 0  # a job is starting: real progress
        # Starting work cancels the VMs' retention timers
        # (the controller's _select_nodes hygiene).
        self.reap_time[rr] = np.where(sel, np.inf, self.reap_time[rr])
        self.reap_seq[rr] = np.where(sel, _SEQ_INF, self.reap_seq[rr])
        self.vm_job[rr] = np.where(sel, jj[:, None], self.vm_job[rr])
        self.qkey[rr, jj] = np.inf
        self.attempts[rr, jj] += 1
        left = np.maximum(self.work[jj] - self.progress[rr, jj], 0.0)
        if self.dp is not None:
            # Re-plan the attempt at the gang's oldest selected VM age
            # (the ClusterManager._start planner argument).
            ages = np.where(
                sel, self.now[rr][:, None] - self.launch[rr], -np.inf
            ).max(axis=1)
            self.dp.begin(rr, jj, left, np.maximum(ages, 0.0))
        self._launch_segment(rr, jj, left)

    def _schedule_pass(self, rr: np.ndarray) -> None:
        """One ``try_schedule`` invocation: head starts, stall, backfill."""
        stuck: list[np.ndarray] = []
        while rr.size:
            rr, head, w, suit, _ = self._head_state(rr)
            if not rr.size:
                break
            ok = suit.sum(axis=1) >= w
            stuck.append(rr[~ok])
            rr, head, suit = rr[ok], head[ok], suit[ok]
            if not rr.size:
                break
            self._start_job(rr, head, suit)
            # Loop: the next queue head may start in the same instant.
        if stuck:
            blocked = np.concatenate(stuck)
            if blocked.size:
                self._stall_actions(blocked)
                if self.cfg.backfill:
                    self._backfill_scan(blocked)

    def _stall_actions(self, rr: np.ndarray) -> None:
        """The controller's ``_queue_stalled``: terminate-all + provision.

        Fires once per scheduling pass for the stuck head: every
        Eq. 8-rejected idle VM is terminated (its lifetime event
        cancelled, hours billed), then the head's worker deficit is
        provisioned within the ``max_vms`` headroom.
        """
        rr, head, w, suit, free = self._head_state(rr)
        if not rr.size:
            return
        if self.policies is not None:
            if self.obs is not None:
                self._count_graced(rr, head, free)
            unsuit = free & ~suit
            kill = unsuit.any(axis=1)
            rk = rr[kill]
            if rk.size:
                u = unsuit[kill]
                if self.obs is not None:
                    self.obs.inc("stall.terminations", int(u.sum()))
                hours = np.where(
                    u, self.now[rk][:, None] - self.launch[rk], 0.0
                )
                self.vm_hours[rk] += hours.sum(axis=1)
                if self.nP > 1:
                    vp = self.vm_pool[rk]
                    for p in range(self.nP):
                        self.pool_hours[rk, p] += np.where(
                            u & (vp == p), hours, 0.0
                        ).sum(axis=1)
                else:
                    self.pool_hours[rk, 0] += hours.sum(axis=1)
                self.alive[rk] &= ~u
                self.death[rk] = np.where(u, np.inf, self.death[rk])
                self.dseq[rk] = np.where(u, _SEQ_INF, self.dseq[rk])
                self.reap_time[rk] = np.where(u, np.inf, self.reap_time[rk])
                self.reap_seq[rk] = np.where(u, _SEQ_INF, self.reap_seq[rk])
                self._count_stall_strikes(rk)
        n_suit = suit.sum(axis=1)
        n_alive = self.alive[rr].sum(axis=1)
        deficit = w - n_suit - self.provisioning[rr]
        headroom = self._fleet_cap(rr) - n_alive - self.provisioning[rr]
        k = np.clip(np.minimum(deficit, headroom), 0, None)
        self._schedule_boots(rr, k, self._pool_rank_rows(rr, head))

    def _pool_rank_rows(
        self, rr: np.ndarray, jj: np.ndarray
    ) -> np.ndarray | None:
        """Per-row pool preference for deficit boots placed for job
        ``jj`` — the allocator's static ranking here; the tenancy
        kernel overrides this with tenant affinity."""
        return None

    def _fleet_cap(self, rr: np.ndarray) -> np.ndarray:
        """Provisioning cap per row — static here; the tenancy kernel
        overrides this with its elastic-in-active-bags cap."""
        return np.full(rr.size, self.cfg.max_vms, dtype=np.int64)

    def _stall_T(self, rr: np.ndarray, head: np.ndarray) -> np.ndarray:
        """The runtime estimate the stalled head is judged against —
        the bag-wide estimate here; the tenancy kernel's is per-bag."""
        return np.maximum(self.est[rr], 1e-6)

    def _count_graced(self, rr: np.ndarray, head: np.ndarray, free: np.ndarray) -> None:
        """Boot-grace near-miss census at a stall action.

        Counts free workers still inside their pool's boot-grace window
        that the *pure* Eq. 8 criterion would have terminated — i.e.
        spared only by the grace rule.  A pure read of equivalence-
        pinned state at the stall choke point, so the event oracle's
        controller mirror produces the exact same totals.
        """
        T = self._stall_T(rr, head)[:, None]
        ages = np.maximum(self.now[rr][:, None] - self.launch[rr], 0.0)
        vp = np.clip(self.vm_pool[rr], 0, None)
        in_grace = ages <= self.latency[vp]
        pure = np.zeros(free.shape, dtype=bool)
        if self.nP == 1:
            pure = self.policies[0].decide_pairs(T, ages)
        else:
            for p, pol in enumerate(self.policies):
                m = self.vm_pool[rr] == p
                if m.any():
                    pure |= m & pol.decide_pairs(T, ages)
        self.obs.inc("stall.graced", int((free & in_grace & ~pure).sum()))

    def _count_stall_strikes(self, rk: np.ndarray) -> None:
        """The controller's churn guardrail over the rows that just
        terminated rejected workers in a stall round."""
        self.stall_strikes[rk] += 1
        if self.obs is not None:
            self.obs.gauge("livelock.peak_streak").set(
                int(self.stall_strikes[rk].max())
            )
        if np.any(self.stall_strikes[rk] >= self.cfg.livelock_threshold):
            raise ProvisioningLivelockError(
                f"{self.cfg.livelock_threshold} consecutive queue stalls "
                "terminated policy-rejected idle workers without any job "
                "starting or completing; the reuse policy rejects every VM "
                "age under this lifetime law — use a bathtub-shaped law or "
                "disable use_reuse_policy"
            )

    def _backfill_scan(self, rr: np.ndarray) -> None:
        """Start jobs behind the stuck head in queue order (unreserved).

        All bag members share one estimate-based suitability mask, so
        the scan is the cluster kernel's with a row-uniform filter; the
        stuck head is excluded by the same width test that stalled it.
        """
        while rr.size:
            _, suit = self._suitability(rr)
            n_s = suit.sum(axis=1)
            queued = np.isfinite(self.qkey[rr])
            startable = queued & (self.width[None, :] <= n_s[:, None])
            has = startable.any(axis=1)
            rr, startable, suit = rr[has], startable[has], suit[has]
            if not rr.size:
                return
            jkey = np.where(startable, self.qkey[rr], np.inf)
            jc = np.argmin(jkey, axis=1)
            self._start_job(rr, jc, suit)

    def _record_completion(self, rr: np.ndarray, jj: np.ndarray) -> None:
        """Push the job's declared hours into the bag estimate.

        Reproduces ``BagOfJobs.estimated_runtime`` bit for bit: the
        trailing ``estimate_window`` values are summed sequentially in
        completion order, then divided by the window length.
        """
        W = self.cfg.estimate_window
        pos = self.buf_pos[rr]
        self.buf[rr, pos] = self.work[jj]
        self.buf_pos[rr] = (pos + 1) % W
        self.buf_len[rr] = np.minimum(self.buf_len[rr] + 1, W)
        k = self.buf_len[rr]
        start = np.where(k < W, 0, self.buf_pos[rr])
        total = np.zeros(rr.size)
        for t in range(W):
            vals = self.buf[rr, (start + t) % W]
            total = np.where(t < k, total + vals, total)
        self.est[rr] = total / k

    # -- event rounds ----------------------------------------------------
    def _process_deaths(self, rr: np.ndarray, col: np.ndarray) -> None:
        self.alive[rr, col] = False
        self.dseq[rr, col] = _SEQ_INF
        self.vm_hours[rr] += self.death[rr, col] - self.launch[rr, col]
        self.pool_hours[rr, np.clip(self.vm_pool[rr, col], 0, None)] += (
            self.death[rr, col] - self.launch[rr, col]
        )
        self.death[rr, col] = np.inf
        self.preemptions[rr] += 1
        # Death cancels the VM's retention timer.
        self.reap_time[rr, col] = np.inf
        self.reap_seq[rr, col] = _SEQ_INF
        jd = self.vm_job[rr, col]
        busy = jd >= 0
        rb, jb = rr[busy], jd[busy]
        if rb.size:
            # Gang abort: waste the segment, requeue at the head,
            # release the survivors; idle deaths need nothing more
            # (no rescheduling pass — the cluster only drops the node).
            if np.any(self.attempts[rb, jb] >= self.cfg.max_attempts_per_job):
                raise RuntimeError(
                    f"a job exceeded {self.cfg.max_attempts_per_job} attempts"
                )
            self.wasted[rb] += self.now[rb] - self.sstart[rb, jb]
            self.failures[rb] += 1
            self._clear_segment(rb, jb)
            self.qkey[rb, jb] = self.head_key[rb]
            self.head_key[rb] -= 1.0
            gang = self.vm_job[rb] == jb[:, None]
            self.vm_job[rb] = np.where(gang, -1, self.vm_job[rb])
            self._schedule_pass(rb)

    def _schedule_reaps(self, rr: np.ndarray, released: np.ndarray) -> None:
        """Retention timers for a released gang, in free-pool order
        (pool rank, then launch/birth)."""
        order = self._oldest(released, rr, self._rank_cols(rr))
        ranks = np.zeros((rr.size, self.S), dtype=np.int64)
        np.put_along_axis(
            ranks,
            order,
            np.broadcast_to(np.arange(self.S)[None, :], (rr.size, self.S)),
            axis=1,
        )
        seqs = self.evseq[rr][:, None] + ranks
        self.reap_seq[rr] = np.where(released, seqs, self.reap_seq[rr])
        self.reap_time[rr] = np.where(
            released,
            self.now[rr][:, None] + self.cfg.hot_spare_hours,
            self.reap_time[rr],
        )
        self.evseq[rr] += released.sum(axis=1)

    def _process_completions(self, rr: np.ndarray, jj: np.ndarray) -> None:
        take = self.seg_take[rr, jj]
        self.progress[rr, jj] = np.minimum(self.progress[rr, jj] + take, self.work[jj])
        after = self.seg_after[rr, jj]
        more = after > _RESIDUAL
        rc, jc = rr[more], jj[more]
        if rc.size:  # checkpoint written; next segment in the same instant
            self._launch_segment(rc, jc, after[more])
        rf, jf = rr[~more], jj[~more]
        if rf.size:
            self._clear_segment(rf, jf)
            gang = self.vm_job[rf] == jf[:, None]
            self.vm_job[rf] = np.where(gang, -1, self.vm_job[rf])
            # Release order: idle timers first (queue empty only), then
            # the estimate update, then the scheduling pass — exactly
            # _job_completed's release -> callbacks -> try_schedule.
            qempty = ~np.isfinite(self.qkey[rf]).any(axis=1)
            rq = rf[qempty]
            if rq.size:
                self._schedule_reaps(rq, gang[qempty])
            self.stall_strikes[rf] = 0
            self._record_completion(rf, jf)
            self.done_count[rf] += 1
            finished = self.done_count[rf] == self.J
            self.makespan[rf[finished]] = self.now[rf[finished]]
            still = rf[~finished]
            if still.size:
                self._schedule_pass(still)

    def _process_boots(self, rr: np.ndarray, slot: np.ndarray) -> None:
        """A provisioned worker joins: draw its lifetime, add the node."""
        self.btime[rr, slot] = np.inf
        self.bseq[rr, slot] = _SEQ_INF
        self.provisioning[rr] -= 1
        pool = np.clip(self.boot_pool[rr, slot], 0, None)
        self.boot_pool[rr, slot] = -1
        self.provisioning_pool[rr, pool] -= 1
        u = self.table.gather(rr, self.draw_k[rr])
        self.draw_k[rr] += 1
        life = self._pool_ppf(u, pool)
        empty = ~self.alive[rr] & (self.vm_job[rr] == -1)
        if not empty.any(axis=1).all():
            raise RuntimeError("no reusable VM column; fleet invariant violated")
        col = np.argmax(empty, axis=1)  # first reusable column
        self.launch[rr, col] = self.now[rr]
        self.death[rr, col] = self.now[rr] + life
        self.dseq[rr, col] = self.evseq[rr]
        self.evseq[rr] += 1
        self.birth[rr, col] = self.births[rr]
        self.births[rr] += 1
        self.alive[rr, col] = True
        self.vm_job[rr, col] = -1
        self.vm_pool[rr, col] = pool
        self._schedule_pass(rr)  # add_node -> try_schedule

    def _process_reaps(self, rr: np.ndarray, col: np.ndarray) -> None:
        """An idle-retention timer fires: terminate if still warranted."""
        self.reap_time[rr, col] = np.inf
        self.reap_seq[rr, col] = _SEQ_INF
        # By the timer invariant the VM is alive and idle; the reap
        # no-ops when the queue is non-empty (the controller's check).
        qempty = ~np.isfinite(self.qkey[rr]).any(axis=1)
        rt, ct = rr[qempty], col[qempty]
        if rt.size:
            self.vm_hours[rt] += self.now[rt] - self.launch[rt, ct]
            self.pool_hours[rt, np.clip(self.vm_pool[rt, ct], 0, None)] += (
                self.now[rt] - self.launch[rt, ct]
            )
            self.alive[rt, ct] = False
            self.death[rt, ct] = np.inf
            self.dseq[rt, ct] = _SEQ_INF

    def run(self) -> int:
        n_rounds = 0
        init = np.arange(self.n)
        if init.size and self.J:
            # t = 0 submission: every submit stalls the empty pool, but
            # only the first provisions (deficit = head width, capped).
            k0 = np.full(self.n, min(int(self.width[0]), self.cfg.max_vms))
            self._schedule_boots(init, k0)
        active = np.flatnonzero(self.done_count < self.J) if self.n else init
        while active.size:
            _, pick = self._select_events(active)
            S, J, B = self.S, self.J, self.B
            is_death = pick < S
            is_comp = (pick >= S) & (pick < S + J)
            is_boot = (pick >= S + J) & (pick < S + J + B)
            is_reap = pick >= S + J + B
            rd = active[is_death]
            rc = active[is_comp]
            rb = active[is_boot]
            rp = active[is_reap]
            if self.obs is not None:
                self.obs.inc("events.death", int(rd.size))
                self.obs.inc("events.comp", int(rc.size))
                self.obs.inc("events.boot", int(rb.size))
                self.obs.inc("events.reap", int(rp.size))
                self._sample_obs(active)
            if rd.size:
                self._process_deaths(rd, pick[is_death])
            if rc.size:
                self._process_completions(rc, pick[is_comp] - S)
            if rb.size:
                self._process_boots(rb, pick[is_boot] - S - J)
            if rp.size:
                self._process_reaps(rp, pick[is_reap] - S - J - B)
            active = active[self.done_count[active] < self.J]
            n_rounds += 1
        if self.n:
            # Bill workers still alive at the makespan; pending boots
            # never fire (the run stops at the bag's last completion).
            live = np.where(self.alive, self.makespan[:, None] - self.launch, 0.0)
            self.vm_hours += live.sum(axis=1)
            for p in range(self.nP):
                self.pool_hours[:, p] += np.where(
                    self.vm_pool == p, live, 0.0
                ).sum(axis=1)
            if self.cfg.run_master:
                self.master_hours = self.makespan.copy()
        return n_rounds


def simulate_service_vectorized(
    dist: LifetimeDistribution,
    jobs,
    config: ServiceBatchConfig,
    *,
    n_replications: int,
    rng: np.random.Generator,
    max_events: int = 1_000_000,
    obs=None,
) -> dict[str, np.ndarray | int]:
    """Run ``n_replications`` lockstep service sweeps (see module docstring).

    Argument validation lives in
    :func:`repro.sim.backend.run_service_replications`; this kernel
    assumes a validated ``config`` and job widths within ``max_vms``.
    Returns the raw per-replication arrays keyed by outcome name plus
    the round count.  ``obs`` is an optional
    :class:`repro.obs.MetricsRegistry`; counting sites are draw-neutral
    and gated so ``obs=None`` adds zero work.
    """
    kernel = _ServiceKernel(dist, jobs, config, n_replications, rng, max_events, obs=obs)
    n_rounds = kernel.run()
    if obs is not None:
        obs.gauge("rng.rows").set(kernel.table._filled)
    return {
        "makespan": kernel.makespan,
        "wasted_hours": kernel.wasted,
        "completed_jobs": kernel.done_count,
        "n_job_failures": kernel.failures,
        "n_preemptions": kernel.preemptions,
        "vm_hours": kernel.vm_hours,
        "pool_vm_hours": kernel.pool_hours,
        "master_hours": kernel.master_hours,
        "n_events": kernel.events,
        "n_draws": kernel.draw_k,
        "n_rounds": n_rounds,
    }

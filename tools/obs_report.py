#!/usr/bin/env python3
"""Render a ``repro.obs`` metrics-JSON file as a terminal report.

Usage::

    python -m repro.experiments fig9-mc --metrics-out m.json
    python tools/obs_report.py m.json

The input is the document :func:`repro.obs.write_metrics_json` emits
(schema_version 1): top-level metadata plus ``counters`` /
``gauges`` / ``histograms`` sections from a merged
:class:`repro.obs.Snapshot`.  The renderer is dependency-free and
read-only — it never recomputes anything, it just formats.

Exit status: 0 on success, 2 on a missing/invalid input file.
"""

from __future__ import annotations

import json
import sys


def _fmt_count(v: float) -> str:
    if isinstance(v, float) and not v.is_integer():
        return f"{v:,.3f}"
    return f"{int(v):,}"


def render(doc: dict) -> str:
    """Format one metrics document; returns the report text."""
    lines: list[str] = []
    meta = {
        k: v
        for k, v in doc.items()
        if k not in ("counters", "gauges", "histograms")
    }
    lines.append("repro.obs metrics report")
    lines.append("=" * 56)
    for k in sorted(meta):
        lines.append(f"  {k:18s} {meta[k]}")

    counters = doc.get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters")
        lines.append("-" * 56)
        width = max(len(n) for n in counters)
        for name in sorted(counters):
            lines.append(f"  {name:{width}s}  {_fmt_count(counters[name]):>14s}")

    gauges = doc.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append("gauges (last / max / min over sources)")
        lines.append("-" * 56)
        width = max(len(n) for n in gauges)
        for name in sorted(gauges):
            g = gauges[name]
            lines.append(
                f"  {name:{width}s}  last {_fmt_count(g['last']):>12s}"
                f"  max {_fmt_count(g['max']):>12s}"
                f"  min {_fmt_count(g['min']):>12s}"
            )

    histograms = doc.get("histograms", {})
    if histograms:
        lines.append("")
        lines.append("histograms")
        lines.append("-" * 56)
        for name in sorted(histograms):
            h = histograms[name]
            lines.append(
                f"  {name}: n={_fmt_count(h['count'])}"
                f" sum={h['sum']:.6g} min={h['min']:.6g} max={h['max']:.6g}"
            )
    return "\n".join(lines)


def main(argv: list[str]) -> int:
    if len(argv) != 1 or argv[0] in ("-h", "--help"):
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(argv[0]) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read metrics file {argv[0]!r}: {exc}",
              file=sys.stderr)
        return 2
    if not isinstance(doc, dict) or doc.get("generator") != "repro.obs":
        print(f"error: {argv[0]!r} is not a repro.obs metrics file",
              file=sys.stderr)
        return 2
    print(render(doc))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

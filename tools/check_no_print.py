#!/usr/bin/env python3
"""Lint: no stray ``print(`` calls in the ``src/repro/`` library code.

Run from the repository root (CI runs it in the lint step)::

    python tools/check_no_print.py

Library code must report through return values, logging, or the
:mod:`repro.obs` instrumentation plane — a ``print`` buried in a kernel
or controller corrupts experiment reports (stdout is the report
channel) and is unusable under ``ProcessPoolExecutor``. The one
sanctioned exception is the CLI front end
(``src/repro/experiments/__main__.py``), whose whole job is printing.

The scan is AST-based, so ``print`` inside docstrings, comments, or
string literals does not trip it — only actual call sites do.

Exit status: 0 when clean, 1 when a stray print is found.
"""

from __future__ import annotations

import ast
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src" / "repro"
ALLOWED = {SRC / "experiments" / "__main__.py"}


def stray_prints(path: pathlib.Path) -> list[int]:
    tree = ast.parse(path.read_text(), filename=str(path))
    return [
        node.lineno
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "print"
    ]


def main() -> int:
    bad = 0
    for path in sorted(SRC.rglob("*.py")):
        if path in ALLOWED:
            continue
        for lineno in stray_prints(path):
            print(f"{path.relative_to(ROOT)}:{lineno}: stray print() call")
            bad += 1
    if bad:
        print(f"\n{bad} stray print call(s) in src/repro/ "
              "(see tools/check_no_print.py for the policy)")
        return 1
    print("no stray print calls in src/repro/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python3
"""Documentation checker: executable snippets + intra-repo links.

Run from the repository root (CI runs it in the ``docs`` job)::

    python tools/check_docs.py

Two checks over the markdown documentation set (top-level ``README.md``,
everything under ``docs/``, and the per-package READMEs):

1. **Snippets execute.**  Every fenced ```python block is written to a
   temp file and run with ``PYTHONPATH=src``; a non-zero exit fails the
   check.  Blocks that are deliberately illustrative (pseudo-code,
   fragments) opt out by placing ``<!-- doccheck: skip -->`` on the line
   directly above the fence.  Shell fences (```sh) are not executed.

2. **Intra-repo links resolve.**  Every relative markdown link target
   (``[text](path)``, optionally with a ``"title"``) must exist on
   disk, resolved against the linking file's directory.  Fenced code
   blocks and inline code spans are stripped before scanning, so
   bracket-paren expressions in snippets are not mistaken for links.
   External (``http…``), ``mailto:`` and pure-anchor (``#…``) links are
   ignored; a ``path#anchor`` link checks only the path part.

Exit status: 0 when everything checked out, 1 otherwise.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SKIP_MARK = "<!-- doccheck: skip -->"
SNIPPET_TIMEOUT_S = 300

#: Markdown files under check: top-level README, docs/, package READMEs.
DOC_GLOBS = ("README.md", "docs/*.md", "src/**/README.md")

_FENCE_RE = re.compile(r"^```python\s*$")
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_FENCED_BLOCK_RE = re.compile(r"^```.*?^```\s*$", re.MULTILINE | re.DOTALL)
_INLINE_CODE_RE = re.compile(r"`[^`\n]*`")


def doc_files() -> list[Path]:
    files: list[Path] = []
    for pattern in DOC_GLOBS:
        files.extend(sorted(REPO_ROOT.glob(pattern)))
    return files


def python_snippets(path: Path) -> list[tuple[int, str]]:
    """(first line number, source) of each runnable ```python block."""
    lines = path.read_text(encoding="utf-8").splitlines()
    snippets: list[tuple[int, str]] = []
    i = 0
    while i < len(lines):
        if _FENCE_RE.match(lines[i]):
            skipped = i > 0 and SKIP_MARK in lines[i - 1]
            start = i + 1
            j = start
            while j < len(lines) and not lines[j].startswith("```"):
                j += 1
            if not skipped:
                snippets.append((start + 1, "\n".join(lines[start:j])))
            i = j + 1
        else:
            i += 1
    return snippets


def run_snippet(source: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src_dir = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src_dir}:{existing}" if existing else src_dir
    with tempfile.NamedTemporaryFile(
        "w", suffix="_doc_snippet.py", delete=False, encoding="utf-8"
    ) as handle:
        handle.write(source)
        tmp = handle.name
    try:
        return subprocess.run(
            [sys.executable, tmp],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=SNIPPET_TIMEOUT_S,
        )
    finally:
        os.unlink(tmp)


def check_snippets(path: Path) -> list[str]:
    failures = []
    for lineno, source in python_snippets(path):
        result = run_snippet(source)
        rel = path.relative_to(REPO_ROOT)
        if result.returncode != 0:
            tail = (result.stderr or result.stdout).strip().splitlines()[-6:]
            failures.append(
                f"{rel}:{lineno}: snippet exited {result.returncode}\n    "
                + "\n    ".join(tail)
            )
        else:
            print(f"  ok  {rel}:{lineno} (python snippet)")
    return failures


def check_links(path: Path) -> list[str]:
    failures = []
    rel = path.relative_to(REPO_ROOT)
    prose = _FENCED_BLOCK_RE.sub("", path.read_text(encoding="utf-8"))
    prose = _INLINE_CODE_RE.sub("", prose)
    for match in _LINK_RE.finditer(prose):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        candidate = (path.parent / target.split("#", 1)[0]).resolve()
        if not candidate.exists():
            failures.append(f"{rel}: broken link -> {target}")
        else:
            print(f"  ok  {rel} -> {target}")
    return failures


def main() -> int:
    failures: list[str] = []
    files = doc_files()
    if not files:
        print("no documentation files found", file=sys.stderr)
        return 1
    for path in files:
        print(f"checking {path.relative_to(REPO_ROOT)}")
        failures.extend(check_links(path))
        failures.extend(check_snippets(path))
    if failures:
        print(f"\n{len(failures)} documentation failure(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
    else:
        print(f"\nall checks passed across {len(files)} file(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

"""Preemption-policy drift monitoring (paper Section 8).

A long-running service fits its model once, then keeps watching observed
lifetimes.  This demo simulates the provider silently changing its
preemption policy (switching the underlying law) and shows the KS-based
monitor flagging the change, after which the service refits.

Run:  PYTHONPATH=src python examples/drift_monitoring.py

Expected output: windows before the change pass the KS test
(``changed=False``); within a window or two after the switch the
statistic crosses the critical value, the monitor reports
``changed=True``, and the refit on post-change data recovers the new
law's tau1.  In production this is the trigger for re-solving the
policies with the refitted model.
"""

import numpy as np

from repro.fitting import EmpiricalCDF, fit_bathtub
from repro.fitting.changepoint import PolicyDriftMonitor
from repro.traces import default_catalog

rng = np.random.default_rng(5)
catalog = default_catalog()

# Reference model fitted from an initial observation campaign.
old_law = catalog.distribution("n1-highcpu-16", "us-east1-b")
initial = old_law.sample(300, rng)
reference = fit_bathtub(EmpiricalCDF.from_samples(initial)).distribution
print("fitted reference model from 300 initial preemptions")

monitor = PolicyDriftMonitor(reference, window=100, alpha=0.01)

# Phase 1: the provider behaves as before (3 windows).
for lifetime in old_law.sample(300, rng):
    report = monitor.observe(float(lifetime))
    if report:
        print(f"  window n={report.n}: ks={report.ks:.3f} "
              f"(critical {report.critical:.3f}) changed={report.changed}")

# Phase 2: the provider silently flattens its early-preemption behaviour
# (e.g. capacity expansion): lifetimes now follow the highcpu-2-like law.
print("\n-- provider policy change happens here --\n")
new_law = catalog.distribution("n1-highcpu-2", "us-central1-c")
post_change = []
for lifetime in new_law.sample(300, rng):
    post_change.append(float(lifetime))
    report = monitor.observe(float(lifetime))
    if report:
        print(f"  window n={report.n}: ks={report.ks:.3f} "
              f"(critical {report.critical:.3f}) changed={report.changed}")

assert monitor.drift_detected, "the monitor must flag the policy change"

# React: refit on post-change data only.
refit = fit_bathtub(EmpiricalCDF.from_samples(np.asarray(post_change)))
print("\ndrift detected -> refit on post-change window:")
print("  new parameters:", {k: round(v, 3) for k, v in refit.params.items()})
print("  (true new law tau1 =", catalog.params("n1-highcpu-2").tau1, ")")

"""Quickstart: collect preemption data, fit the model, query it.

Mirrors the paper's core workflow in ~40 lines:

1. observe VM lifetimes (here: synthetic traces standing in for the
   paper's 870 real Google Preemptible VMs),
2. least-squares fit the constrained-preemption model (Eq. 1),
3. compare against classical failure distributions (Fig. 1),
4. inspect the three preemption phases and the expected lifetime.

Run:  PYTHONPATH=src python examples/quickstart.py

Expected output: the bathtub family tops the model ranking with
r2 > 0.97 while exponential/Weibull trail badly, the fitted parameters
land in the paper's Table 2 ranges (A ~ 0.4, b ~ 24), and the phase
boundaries split the 24 h deadline into early / stable / final — the
structure every policy in this repo exploits.  This is the first stop
after reading the README's quickstart section.
"""

from repro import (
    BathtubParams,
    ConstrainedPreemptionModel,
    EmpiricalCDF,
    TraceGenerator,
    compare_models,
    phase_boundaries,
)

# 1. "Launch" 150 n1-highcpu-16 VMs and record their time-to-preemption.
trace = TraceGenerator(seed=7).figure1_trace(n=150)
lifetimes = trace.lifetimes()
print(f"observed {len(lifetimes)} preemptions, "
      f"mean lifetime {lifetimes.mean():.2f} h, median {sorted(lifetimes)[len(lifetimes)//2]:.2f} h")

# 2-3. Fit every candidate family to the empirical CDF and rank them.
ecdf = EmpiricalCDF.from_samples(lifetimes)
comparison = compare_models(ecdf, lifetimes)
print("\nmodel ranking (best first):")
for name in comparison.ranking:
    score = comparison.scores[name]
    print(f"  {name:18s} r2={score.r2:7.4f}  rmse={score.rmse:.4f}  ks={score.ks:.4f}")

# 4. Work with the winning bathtub model.
params = BathtubParams.from_mapping(comparison.fits["bathtub"].params)
model = ConstrainedPreemptionModel(params)
bounds = phase_boundaries(model)
print(f"\nfitted parameters: A={params.A:.3f} tau1={params.tau1:.3f} "
      f"tau2={params.tau2:.3f} b={params.b:.2f}")
print(f"phases: early ends {bounds.early_end:.2f} h, "
      f"final starts {bounds.final_start:.2f} h, support ends {bounds.t_max:.2f} h")
print(f"expected lifetime E[L] = {model.expected_lifetime():.2f} h "
      "(the paper's MTTF replacement)")
print(f"P(preempted within 6 h) = {model.cdf(6.0):.3f}   "
      f"P(survive a 6 h job started at age 8 h) = "
      f"{1 - (model.cdf(14.0) - model.cdf(8.0)) / (1 - model.cdf(8.0)):.3f}")

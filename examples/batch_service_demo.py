"""Batch computing service demo (paper Section 5 / Fig. 9).

Runs a Nanoconfinement-style bag on a simulated preemptible fleet with
the model-driven policies, then the same bag under the memoryless
baseline, and prints the cost/performance comparison against a
conventional on-demand deployment.

Run:  PYTHONPATH=src python examples/batch_service_demo.py

Expected output: both policies land near the raw ~4.7x preemptible
discount, with the model-driven reuse row suffering fewer job failures
and a shorter makespan than the memoryless baseline.  This drives the
full event-driven controller; for sweeping many policy configurations
at 10k+ replications, use the headless evaluator instead
(``repro.service.evaluate`` — see the README's service snippet).
"""

from repro.service import BagRequest, BatchComputingService, JobRequest, ServiceConfig
from repro.sim import CloudProvider, RandomStreams, Simulator
from repro.traces import default_catalog
from repro.utils.tables import format_table

# Sized so the run spans a full 24 h VM lifetime: the policies only
# diverge once VMs approach the deadline (Fig. 5), so a bag that
# finishes in a few hours would show no difference at all.
N_JOBS = 72
JOB_HOURS = 1.0
WIDTH = 1
MAX_VMS = 3


def run_once(use_reuse_policy: bool, seed: int = 42):
    catalog = default_catalog()
    sim = Simulator()
    cloud = CloudProvider(sim, catalog, RandomStreams(seed))
    model = catalog.distribution("n1-highcpu-16", "us-central1-c")
    service = BatchComputingService(
        sim,
        cloud,
        model,
        ServiceConfig(
            vm_type="n1-highcpu-16",
            max_vms=MAX_VMS,
            use_reuse_policy=use_reuse_policy,
        ),
    )
    bag = BagRequest(
        jobs=[JobRequest(work_hours=JOB_HOURS, width=WIDTH, name=f"nano-{i}")
              for i in range(N_JOBS)],
        name="nanoconfinement sweep",
    )
    bag_id = service.submit_bag(bag)
    service.run_until_bag_done(bag_id)
    service.shutdown()
    return service.report(bag_id)


rows = []
for label, use_policy in (("model-driven reuse", True), ("memoryless baseline", False)):
    rep = run_once(use_policy)
    rows.append(
        (
            label,
            rep.makespan_hours,
            rep.n_preemptions,
            rep.metrics.n_job_failures,
            rep.metrics.total_cost,
            rep.metrics.cost_per_job(),
            rep.cost_reduction_factor,
        )
    )

print(
    format_table(
        ["policy", "makespan (h)", "preempts", "job fails", "total $", "$/job", "vs on-demand"],
        rows,
        floatfmt=".3f",
        title=f"{N_JOBS}-job bag (1 h jobs) on preemptible n1-highcpu-16 x{MAX_VMS}",
    )
)
print(
    "\n(on-demand baseline pays list price for the same work with zero "
    "preemptions; the raw preemptible discount is ~4.7x, so reduction "
    "factors near 4.3x mean the service loses <10% to preemption overheads)"
)

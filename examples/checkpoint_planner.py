"""Checkpoint planning demo (paper Section 4.3 / Fig. 8).

1. Computes the DP-optimal checkpoint schedule for jobs of several
   lengths and start ages — reproducing the paper's signature
   *increasing intervals* on fresh VMs (cf. its 5-hour example:
   15, 28, 38, 59, 128 minutes).
2. Compares the expected makespan against Young-Daly and no-checkpoint
   baselines, analytically and by Monte-Carlo simulation.
3. Applies the schedule to a *real* checkpointable workload (the 1-D
   Lagrangian shock solver) with injected preemptions and shows the
   final physics is bit-identical to an uninterrupted run.

Run:  PYTHONPATH=src python examples/checkpoint_planner.py

Expected output: intervals that *lengthen* through the stable phase on
a fresh VM and compress near the deadline; DP expected-runtime
increases a few percentage points below Young-Daly at every job length
(with the Monte-Carlo column, simulated through
``repro.sim.backend.run_replications``, agreeing with the analytic
one); and an interrupted physics run whose final state equals the
clean run exactly.
"""

import numpy as np

from repro.policies.checkpointing import (
    CheckpointPolicy,
    evaluate_schedule,
    simulate_schedule,
)
from repro.policies.youngdaly import young_daly_interval, young_daly_schedule
from repro.traces import default_catalog
from repro.utils.tables import format_table
from repro.workloads import LagrangianShock1D, run_workload

DELTA = 1.0 / 60.0  # 1-minute checkpoint writes, as in the paper
dist = default_catalog().distribution("n1-highcpu-16", "us-east1-b")
policy = CheckpointPolicy(dist, step=0.1, delta=DELTA)

# --- 1. schedules across start ages -----------------------------------
print("DP-optimal checkpoint intervals (minutes):")
for start_age in (0.0, 8.0, 18.0):
    plan = policy.plan(5.0, start_age)
    intervals = ", ".join(f"{m:.0f}" for m in plan.intervals_minutes())
    print(f"  5 h job @ VM age {start_age:4.1f} h -> [{intervals}]  "
          f"(expected makespan {plan.expected_makespan:.3f} h)")

# --- 2. baseline comparison -------------------------------------------
tau = young_daly_interval(DELTA, mttf=1.0)  # the paper's YD parameterisation
rows = []
for J in (2.0, 4.0, 6.0):
    ours = policy.expected_makespan(J, 0.0)
    yd = evaluate_schedule(dist, young_daly_schedule(J, tau), delta=DELTA)
    none = evaluate_schedule(dist, [J], delta=DELTA)
    mc = simulate_schedule(
        dist, policy.plan(J, 0.0).segments, delta=DELTA,
        n_runs=2000, rng=np.random.default_rng(1),
    ).mean()
    rows.append((J, 100 * (ours - J) / J, 100 * (mc - J) / J,
                 100 * (yd - J) / J, 100 * (none - J) / J))
print()
print(format_table(
    ["job (h)", "DP analytic (%)", "DP Monte-Carlo (%)", "Young-Daly (%)", "no ckpt (%)"],
    rows,
    floatfmt=".2f",
    title="Expected runtime increase on a fresh VM",
))

# --- 3. schedule applied to real physics ------------------------------
plan = policy.plan(2.0, 0.0)
steps_per_hour = 150
ckpt_every = max(int(plan.segments[0] * steps_per_hour), 1)
clean, _ = run_workload(LagrangianShock1D(n_zones=120, steps=300))
victim = LagrangianShock1D(n_zones=120, steps=300)
interrupted, executed = run_workload(
    victim, checkpoint_every=ckpt_every, fail_at_steps={90, 201}
)
print(f"\nLULESH-style run with 2 injected preemptions: "
      f"{executed} steps executed for 300 of work "
      f"(recomputed {executed - 300}).")
print(f"shock position clean={clean['shock_position']:.5f} "
      f"interrupted={interrupted['shock_position']:.5f} "
      f"identical={clean == interrupted}")

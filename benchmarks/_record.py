"""Shared writer for the checked-in ``BENCH_*.json`` records.

Every benchmark that persists a record at the repo root goes through
:func:`write_bench_record`, so all records share one envelope::

    {
      "schema_version": 1,
      "bench": "<name>",           # record is BENCH_<name>.json
      "python": "3.12.3",          # interpreter that produced it
      "numpy": "2.0.1",
      "config": {...},             # the knobs the numbers depend on
      "speedup": 107.6,            # headline claim, when the bench has one
      "phase_seconds": {...},      # measured wall-clock per phase
      "results": {...}             # bench-specific payload
    }

Keeping the envelope uniform lets tooling (and reviewers diffing a
regenerated record) find the headline number and the producing
environment without knowing each benchmark's shape.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Any

import numpy as np

ROOT = Path(__file__).resolve().parent.parent
SCHEMA_VERSION = 1


def write_bench_record(
    name: str,
    *,
    config: dict[str, Any] | None = None,
    speedup: float | None = None,
    phase_seconds: dict[str, float] | None = None,
    results: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Write ``BENCH_<name>.json`` at the repo root; returns the document."""
    doc: dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "bench": name,
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    if config:
        doc["config"] = config
    if speedup is not None:
        doc["speedup"] = round(float(speedup), 1)
    if phase_seconds:
        doc["phase_seconds"] = {
            k: round(float(v), 3) for k, v in phase_seconds.items()
        }
    if results:
        doc["results"] = results
    path = ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc

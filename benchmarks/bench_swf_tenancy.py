"""Production-scale SWF import through the chunked tenancy kernel.

The scale claim of the streamed-replication work, on synthetic
Standard Workload Format logs (written as real SWF files so the parser
is covered at scale, not just the kernel).  Two measurements:

- ``test_large_trace_chunked_completes`` imports a public-archive-scale
  log — 1100 users submitting 21k jobs over ~70 hours — and sweeps it
  through ``run_tenant_replications`` in bounded-memory chunks, where
  materialising the whole batch's ``(n_replications, n_jobs)`` state
  at once is the thing the ``chunk_size`` knob exists to avoid.
- ``test_speedup_floor`` pins the >= 10x vectorized-over-event floor
  (measured ~15-20x) at the kernel's amortisation regime — 1000
  replications of a 250-job / ~90-tenant imported log with ~1.5 h
  median runtimes — streaming in 500-wide chunks; the event leg (one
  real ``MultiTenantService`` stack per replication) is timed at 8
  replications and scaled linearly.  Emits the
  ``BENCH_swf_tenancy.json`` record at the repo root.
"""

import time

import numpy as np
import pytest
from _record import write_bench_record

from repro.sim.backend import run_tenant_replications
from repro.traces.swf import parse_swf, swf_traffic

pytestmark = pytest.mark.benchmark

LARGE_JOBS = 21_000
LARGE_USERS = 1_100


def _write_swf(path, *, n_jobs, n_users, mean_gap_s, log_mu, log_sigma,
               max_procs, seed):
    """A synthetic SWF log: Poisson submits, lognormal runtimes."""
    rng = np.random.default_rng(seed)
    lines = [
        "; Version: 2.2",
        "; MaxProcs: 256",
        "; Note: synthetic log for scale benchmarking",
    ]
    t = 0.0
    for jid in range(1, n_jobs + 1):
        t += rng.exponential(mean_gap_s)
        run_s = max(300, int(rng.lognormal(log_mu, log_sigma)))
        procs = int(rng.integers(1, max_procs + 1))
        user = int(rng.integers(1, n_users + 1))
        group = user % 50 + 1
        lines.append(
            f"{jid} {int(t)} 10 {run_s} {procs} -1 -1 "
            f"{procs} {run_s} -1 1 {user} {group} 1 1 1 -1 -1"
        )
    path.write_text("\n".join(lines) + "\n")
    return path


@pytest.fixture(scope="module")
def large_log(tmp_path_factory):
    """21k jobs / 1100 users over ~70 h (short ~0.2 h median runtimes
    keep the makespan — and the benchmark wall-clock — bounded)."""
    return _write_swf(
        tmp_path_factory.mktemp("swf") / "large.swf",
        n_jobs=LARGE_JOBS, n_users=LARGE_USERS, mean_gap_s=12.0,
        log_mu=6.0, log_sigma=1.0, max_procs=2, seed=42,
    )


@pytest.fixture(scope="module")
def speedup_log(tmp_path_factory):
    """250 jobs / 100 users with ~1.5 h median runtimes: long enough
    that preemption events dominate, which is exactly the per-event
    Python cost the lockstep rounds amortise."""
    return _write_swf(
        tmp_path_factory.mktemp("swf") / "speedup.swf",
        n_jobs=250, n_users=100, mean_gap_s=100.0,
        log_mu=8.6, log_sigma=0.8, max_procs=4, seed=7,
    )


def _run(dist, traffic, backend, n, *, max_vms, **kwargs):
    T = max(b.tenant for b in traffic) + 1
    return run_tenant_replications(
        dist,
        traffic,
        n_tenants=T,
        n_replications=n,
        seed=0,
        backend=backend,
        max_vms=max_vms,
        scheduling="fair",
        max_events=5_000_000,
        **kwargs,
    )


def test_import_at_scale(benchmark, large_log):
    log = benchmark(parse_swf, large_log)
    assert len(log) == LARGE_JOBS


def test_large_trace_chunked_completes(reference_dist, large_log):
    """Acceptance: a 1000+-tenant / 20k+-job batch streams to completion.

    ``chunk_size=1`` is the extreme of the memory/SIMD-width trade: the
    kernel never holds more than one replication's ``(1, n_jobs)``
    state, and the chunk-by-chunk reduction still produces one coherent
    outcome batch.
    """
    traffic = swf_traffic(large_log, width_cap=2)
    n_tenants = len({b.tenant for b in traffic})
    n_jobs = sum(len(b.jobs) for b in traffic)
    assert n_tenants >= 1000 and n_jobs >= 20_000
    t0 = time.perf_counter()
    out = _run(reference_dist, traffic, "vectorized", 2, max_vms=32,
               chunk_size=1)
    chunked_s = time.perf_counter() - t0
    print(
        f"\nchunked (n=2, chunk_size=1): {chunked_s:.1f}s, "
        f"{n_tenants} tenants, {n_jobs} jobs, "
        f"makespan {out.mean_makespan:.1f}h, "
        f"admitted {out.admitted_fraction.mean():.2f}"
    )
    assert out.n_replications == 2
    assert np.all(np.isfinite(out.makespan))
    # Stash for the record-writing test (module-scoped side channel).
    test_large_trace_chunked_completes.result = {
        "seconds": round(chunked_s, 1),
        "n_tenants": n_tenants,
        "n_jobs": n_jobs,
        "chunk_size": 1,
        "max_vms": 32,
        "mean_makespan_hours": round(float(out.mean_makespan), 1),
    }


def test_speedup_floor(reference_dist, speedup_log):
    """Acceptance floor: vectorized >= 10x over event on imported traffic."""
    n, n_event, chunk = 1000, 8, 500
    traffic = swf_traffic(speedup_log, width_cap=4)
    n_tenants = len({b.tenant for b in traffic})
    n_jobs = sum(len(b.jobs) for b in traffic)
    _run(reference_dist, traffic, "vectorized", 8, max_vms=16)  # warm PPF
    t0 = time.perf_counter()
    _run(reference_dist, traffic, "event", n_event, max_vms=16)
    t1 = time.perf_counter()
    vec = _run(reference_dist, traffic, "vectorized", n, max_vms=16,
               chunk_size=chunk)
    t2 = time.perf_counter()
    event_s = (t1 - t0) * (n / n_event)
    vec_s = t2 - t1
    speedup = event_s / vec_s
    print(
        f"\nevent (scaled from n={n_event}): {event_s:.1f}s  "
        f"vectorized (chunked): {vec_s:.1f}s  speedup: {speedup:.0f}x "
        f"at n={n}, {n_jobs} jobs, {n_tenants} tenants"
    )
    assert speedup >= 10.0
    assert vec.n_replications == n
    large = getattr(test_large_trace_chunked_completes, "result", None)
    write_bench_record(
        "swf_tenancy",
        config={
            "n_jobs": n_jobs,
            "n_tenants": n_tenants,
            "n_replications": n,
            "chunk_size": chunk,
            "max_vms": 16,
            "scheduling": "fair",
            "event_seconds_measured_at": n_event,
            "floor": 10.0,
        },
        speedup=speedup,
        phase_seconds={
            "event_scaled": event_s,
            "vectorized": vec_s,
        },
        results={"large_trace_chunked": large},
    )

"""Fig. 5 + Fig. 6 benchmarks: scheduling-policy failure probabilities."""

import pytest

import numpy as np

from repro.experiments import fig5_start_time, fig6_job_length

pytestmark = pytest.mark.benchmark


def test_fig5_start_time_sweep(benchmark):
    result = benchmark(fig5_start_time.run, job_length=6.0, num=49)
    late = result.start_ages > 18.5
    np.testing.assert_allclose(result.memoryless[late], 1.0)
    assert 0.3 < result.fresh_vm_level < 0.55


def test_fig6_job_length_sweep(benchmark):
    result = benchmark.pedantic(
        fig6_job_length.run,
        kwargs=dict(num_lengths=12, num_ages=48),
        rounds=3,
        iterations=1,
    )
    assert result.reduction_factor() > 1.4

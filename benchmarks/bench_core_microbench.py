"""Micro-benchmarks of the hot paths underlying every experiment.

These are the operations the policies call millions of times across a
service run: model CDF evaluation, truncated moments, sampling, and the
curve fit itself.
"""

import pytest

import numpy as np

from repro.fitting.ecdf import EmpiricalCDF
from repro.fitting.least_squares import fit_bathtub

pytestmark = pytest.mark.benchmark


def test_cdf_vectorised_evaluation(benchmark, reference_dist):
    t = np.linspace(0.0, 24.0, 100_000)
    out = benchmark(reference_dist.cdf, t)
    assert out.shape == t.shape


def test_truncated_moment_closed_form(benchmark, reference_dist):
    def moments():
        return [
            reference_dist.truncated_first_moment(s, s + 4.0)
            for s in np.linspace(0.0, 20.0, 200)
        ]

    out = benchmark(moments)
    assert all(m >= 0.0 for m in out)


def test_inverse_transform_sampling(benchmark, reference_dist):
    rng = np.random.default_rng(0)
    out = benchmark(reference_dist.sample, 100_000, rng)
    assert out.shape == (100_000,)


def test_bathtub_curve_fit(benchmark, reference_dist):
    lifetimes = reference_dist.sample(300, np.random.default_rng(1))
    ecdf = EmpiricalCDF.from_samples(lifetimes)
    fit = benchmark(fit_bathtub, ecdf)
    assert fit.sse < 1.0

"""Ablation: checkpoint-DP design choices.

* failure-probability form: paper-literal unconditioned difference vs
  survival-conditioned hazard form (DESIGN.md deviation note),
* DP grid resolution: coarse vs fine work-steps.

Timing shows the cost of each choice; assertions show the conditional
variant prices deadline-doomed states correctly and that coarsening the
grid does not change the makespan materially.
"""

import pytest

from repro.policies.checkpointing import CheckpointPolicy

DELTA = 1.0 / 60.0


_LATE_MAKESPANS: dict[str, float] = {}

pytestmark = pytest.mark.benchmark


@pytest.mark.parametrize("variant", ["paper", "conditional"])
def test_dp_variant(benchmark, reference_dist, variant):
    def solve():
        policy = CheckpointPolicy(
            reference_dist, step=0.2, delta=DELTA, variant=variant
        )
        return policy.plan(4.0, 0.0), policy.expected_makespan(4.0, 20.0)

    plan, late_makespan = benchmark.pedantic(solve, rounds=3, iterations=1)
    assert plan.expected_makespan >= 4.0
    _LATE_MAKESPANS[variant] = late_makespan
    if len(_LATE_MAKESPANS) == 2:
        # Only the conditional form prices the doomed late start properly:
        # it must charge at least as much as the paper-literal form.
        assert _LATE_MAKESPANS["conditional"] >= _LATE_MAKESPANS["paper"]


@pytest.mark.parametrize("step", [0.4, 0.2, 0.1])
def test_dp_grid_resolution(benchmark, reference_dist, step):
    def solve():
        return CheckpointPolicy(reference_dist, step=step, delta=DELTA).expected_makespan(
            4.0, 0.0
        )

    makespan = benchmark.pedantic(solve, rounds=3, iterations=1)
    # Coarse grids may over- or under-checkpoint slightly, but the
    # expected makespan must stay within a tight band of the fine answer.
    assert 4.0 <= makespan < 4.6

"""Fig. 9 benchmark: full batch-service simulation (both panels)."""

import pytest

from repro.experiments import fig9_service

pytestmark = pytest.mark.benchmark


def test_fig9_service_run(benchmark):
    result = benchmark.pedantic(
        fig9_service.run,
        kwargs=dict(n_jobs=20, max_vms=8, n_slowdown_seeds=3),
        rounds=3,
        iterations=1,
    )
    for app in result.costs:
        assert app.reduction_factor > 2.5

"""Fig. 8 benchmark: DP checkpoint planning vs Young-Daly evaluation."""

import pytest

from repro.experiments import fig8_checkpointing

pytestmark = pytest.mark.benchmark


def test_fig8_overhead_sweeps(benchmark):
    result = benchmark.pedantic(
        fig8_checkpointing.run,
        kwargs=dict(num_ages=8, num_lengths=5, step=0.2),
        rounds=3,
        iterations=1,
    )
    assert result.overhead_ours_by_age.mean() < result.overhead_yd_by_age.mean()

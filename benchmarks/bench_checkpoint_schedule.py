"""Section 4.3 table benchmark: the 5-hour job's DP schedule."""

import pytest

from repro.experiments import checkpoint_schedule

pytestmark = pytest.mark.benchmark


def test_five_hour_schedule(benchmark):
    result = benchmark.pedantic(
        checkpoint_schedule.run, kwargs=dict(step=0.1), rounds=3, iterations=1
    )
    assert result.monotone_increasing

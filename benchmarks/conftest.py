"""Benchmark-suite configuration.

Every benchmark regenerates one paper artifact (figure/table series) via
the corresponding :mod:`repro.experiments` module and asserts the
artifact's headline claim, so `pytest benchmarks/ --benchmark-only` both
times the harness and re-validates the reproduction.
"""

import pytest


@pytest.fixture(scope="session")
def reference_dist():
    from repro.traces.catalog import default_catalog

    return default_catalog().distribution("n1-highcpu-16", "us-east1-b")

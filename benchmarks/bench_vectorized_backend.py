"""Event vs vectorized Monte-Carlo backend at 1k/10k replications.

The headline claim of the vectorized backend: replication sweeps that
took seconds of Python-level event dispatch run in milliseconds of NumPy
rounds, with bit-compatible outcomes (see
tests/test_sim_backend_equivalence.py).  ``test_speedup_at_10k`` pins
the >= 10x floor from the issue's acceptance criteria; the measured
ratio on the reference plan is ~40-60x.
"""

import time

import pytest

from repro.policies.youngdaly import young_daly_schedule
from repro.sim.backend import run_replications

pytestmark = pytest.mark.benchmark

#: A realistic plan: a 4-hour job under a ~20-minute Young-Daly interval.
SCHEDULE = young_daly_schedule(4.0, 1.0 / 3.0)
DELTA = 1.0 / 60.0


def _sweep(reference_dist, backend, n):
    return run_replications(
        reference_dist,
        SCHEDULE,
        delta=DELTA,
        n_replications=n,
        seed=0,
        backend=backend,
    )


@pytest.mark.parametrize("n", [1000, 10_000], ids=["1k", "10k"])
def test_event_backend(benchmark, reference_dist, n):
    out = benchmark(_sweep, reference_dist, "event", n)
    assert out.n_replications == n


@pytest.mark.parametrize("n", [1000, 10_000], ids=["1k", "10k"])
def test_vectorized_backend(benchmark, reference_dist, n):
    out = benchmark(_sweep, reference_dist, "vectorized", n)
    assert out.n_replications == n


def test_speedup_at_10k(reference_dist):
    """Acceptance floor: vectorized >= 10x faster at 10k replications."""
    n = 10_000
    _sweep(reference_dist, "vectorized", n)  # warm the PPF table
    t0 = time.perf_counter()
    event = _sweep(reference_dist, "event", n)
    t1 = time.perf_counter()
    vec = _sweep(reference_dist, "vectorized", n)
    t2 = time.perf_counter()
    event_s, vec_s = t1 - t0, t2 - t1
    speedup = event_s / vec_s
    print(
        f"\nevent: {event_s:.3f}s  vectorized: {vec_s:.4f}s  "
        f"speedup: {speedup:.0f}x at n={n}"
    )
    assert speedup >= 10.0
    assert event.mean_makespan == pytest.approx(vec.mean_makespan, abs=1e-9)

"""Event vs vectorized service policy evaluation at 1k/10k replications.

The headline claim of the policy-evaluation layer: scoring a (reuse x
hot-spare x checkpoint) configuration at production replication counts
runs as batched NumPy rounds instead of one event-driven replay per
replication, with identical seeded outcomes (see
tests/test_service_evaluate.py).  ``test_speedup_at_10k`` pins the
issue's >= 20x acceptance floor; the measured ratio is far higher.
"""

import time

import pytest

from repro.service import ServiceConfig, ServicePolicyEvaluator

pytestmark = pytest.mark.benchmark

JOB = 6.0
#: A representative configuration: model-driven reuse + DP checkpointing.
CONFIG = ServiceConfig(use_reuse_policy=True, use_checkpointing=True)


@pytest.fixture(scope="module")
def evaluator(reference_dist):
    """One evaluator instance, as a long-lived service would hold it.

    The DP checkpoint plan is solved once at construction-time scale and
    cached on the instance; the benchmark measures the per-sweep scoring
    cost, which is what repeats across a configuration grid.
    """
    ev = ServicePolicyEvaluator(reference_dist, CONFIG)
    ev.evaluate(JOB, n_replications=10, seed=0)  # warm PPF table + DP plan
    return ev


def _evaluate(evaluator, backend, n):
    return evaluator.evaluate(JOB, n_replications=n, seed=0, backend=backend)


@pytest.mark.parametrize("n", [1000, 10_000], ids=["1k", "10k"])
def test_event_evaluator(benchmark, evaluator, n):
    out = benchmark(_evaluate, evaluator, "event", n)
    assert out.n_replications == n


@pytest.mark.parametrize("n", [1000, 10_000], ids=["1k", "10k"])
def test_vectorized_evaluator(benchmark, evaluator, n):
    out = benchmark(_evaluate, evaluator, "vectorized", n)
    assert out.n_replications == n


def test_speedup_at_10k(evaluator):
    """Acceptance floor: vectorized >= 20x faster at 10k replications."""
    n = 10_000
    _evaluate(evaluator, "vectorized", n)  # warm caches
    t0 = time.perf_counter()
    event = _evaluate(evaluator, "event", n)
    t1 = time.perf_counter()
    vec = _evaluate(evaluator, "vectorized", n)
    t2 = time.perf_counter()
    event_s, vec_s = t1 - t0, t2 - t1
    speedup = event_s / vec_s
    print(
        f"\nevent: {event_s:.3f}s  vectorized: {vec_s:.4f}s  "
        f"speedup: {speedup:.0f}x at n={n}"
    )
    assert speedup >= 20.0
    assert event.mean_makespan == pytest.approx(vec.mean_makespan, abs=1e-9)
    assert event.failure_fraction == vec.failure_fraction

"""Batched DP checkpoint kernel vs per-attempt event planning.

``checkpoint="dp"`` used to be event-only: every attempt walked
``CheckpointPolicy.plan`` inside the Python event loop.  The
:class:`~repro.sim.checkpoint_vectorized.DPPlanWalker` shares one DP
table across all replications and advances every in-flight attempt per
lockstep round, so the sweep amortises the planner the same way the
kernels amortise event dispatch.  Two measurements:

- ``test_dp_equivalence_at_scale`` re-checks the 1e-9 contract at the
  benchmark's own scale (no silent divergence behind the speedup).
- ``test_speedup_floor`` pins the >= 10x vectorized-over-event floor
  for a DP-checkpointed service sweep; the event leg is timed on a
  replication slice and scaled linearly.  Emits
  ``BENCH_checkpoint_dp.json`` at the repo root.
"""

import time

import numpy as np
import pytest
from _record import write_bench_record

from repro.sim.backend import run_service_replications
from repro.sim.service_vectorized import ServiceBatchConfig

pytestmark = pytest.mark.benchmark

BAG = [(3.7, 2), (1.2, 1), (8.4, 3), (0.6, 2), (5.5, 4), (2.2, 1)]
CONFIG = ServiceBatchConfig(
    max_vms=8,
    use_reuse_policy=True,
    checkpoint="dp",
    checkpoint_cost=0.1,
    checkpoint_step=0.25,
)


def _run(dist, backend, n):
    return run_service_replications(
        dist,
        BAG,
        config=CONFIG,
        n_replications=n,
        seed=0,
        backend=backend,
    )


def test_dp_equivalence_at_scale(reference_dist):
    a = _run(reference_dist, "event", 64)
    b = _run(reference_dist, "vectorized", 64)
    np.testing.assert_allclose(a.makespan, b.makespan, atol=1e-9)
    np.testing.assert_allclose(a.vm_hours, b.vm_hours, atol=1e-9)
    np.testing.assert_array_equal(a.n_draws, b.n_draws)
    np.testing.assert_array_equal(a.n_events, b.n_events)


def test_speedup_floor(reference_dist):
    """Acceptance floor: vectorized >= 10x over event with DP plans."""
    n, n_event = 2000, 32
    _run(reference_dist, "vectorized", 8)  # warm PPF caches + DP table
    t0 = time.perf_counter()
    _run(reference_dist, "event", n_event)
    t1 = time.perf_counter()
    _run(reference_dist, "vectorized", n)
    t2 = time.perf_counter()
    event_s = (t1 - t0) * (n / n_event)
    vec_s = t2 - t1
    speedup = event_s / vec_s
    print(
        f"\nevent (scaled from n={n_event}): {event_s:.1f}s  "
        f"vectorized: {vec_s:.1f}s  speedup: {speedup:.0f}x at n={n}, "
        f"{len(BAG)} jobs, dp plans"
    )
    write_bench_record(
        "checkpoint_dp",
        config={
            "n_replications": n,
            "n_jobs": len(BAG),
            "checkpoint": "dp",
            "event_seconds_measured_at": n_event,
        },
        speedup=speedup,
        phase_seconds={
            "event_scaled": event_s,
            "vectorized": vec_s,
        },
    )
    assert speedup >= 10.0

"""Section 3.2.2 table benchmark: per-type fitting pipeline."""

import pytest

from repro.experiments import params_table

pytestmark = pytest.mark.benchmark


def test_per_type_fitting(benchmark):
    result = benchmark.pedantic(
        params_table.run, kwargs=dict(per_type=250, seed=13), rounds=3, iterations=1
    )
    assert result.lifetime_ranking()[-1] == "n1-highcpu-32"

"""Event vs vectorized *tenancy* backend at 1k replications of real traffic.

The headline claim of the multi-tenant kernel: sweeping a whole traffic
trace — four tenants streaming Poisson bag submissions (~60 jobs) onto
one shared 16-worker-cap fleet under fair-share scheduling and
admission control — across 1000 replications runs an order of magnitude
faster through the lockstep NumPy rounds than through 1000 real
``MultiTenantService`` controller stacks, with identical
per-replication outcomes (tests/test_tenancy_backend_equivalence.py).
``test_speedup_at_1k`` pins the >= 10x floor from the issue's
acceptance criteria (measured ~25-35x) and emits a
``BENCH_tenancy.json`` record at the repo root.
"""

import time

import numpy as np
import pytest
from _record import write_bench_record

from repro.sim.backend import run_tenant_replications
from repro.traffic.arrivals import JobMix, PoissonProcess, TenantSpec, sample_traffic

pytestmark = pytest.mark.benchmark

MAX_VMS = 16
N_TENANTS = 4
HORIZON = 8.0


def _traffic():
    """Four Poisson tenants with heterogeneous lognormal job mixes."""
    tenants = [
        TenantSpec(
            name=f"tenant-{i}",
            arrivals=PoissonProcess(1.0),
            mix=JobMix(
                mean_hours=0.6, cv=0.4, widths=(1, 2, 4), jobs_per_bag=(2, 4)
            ),
            weight=float(i + 1),
        )
        for i in range(N_TENANTS)
    ]
    return sample_traffic(tenants, HORIZON, seed=7)


def _run(dist, backend, n):
    return run_tenant_replications(
        dist,
        _traffic(),
        n_replications=n,
        seed=0,
        backend=backend,
        max_vms=MAX_VMS,
        scheduling="fair",
        admission_cap=24,
    )


@pytest.mark.parametrize("n", [100, 1000], ids=["100", "1k"])
def test_vectorized_backend(benchmark, reference_dist, n):
    out = benchmark(_run, reference_dist, "vectorized", n)
    assert out.n_replications == n


def test_event_backend_100(benchmark, reference_dist):
    out = benchmark.pedantic(
        _run, args=(reference_dist, "event", 100), rounds=1, iterations=1
    )
    assert out.n_replications == 100


def test_speedup_at_1k(reference_dist):
    """Acceptance floor: vectorized >= 10x faster at 1k traffic runs.

    The event leg is timed at 100 replications and scaled linearly (one
    independent controller stack per replication), keeping the
    benchmark short while the floor check stays conservative.
    """
    n, n_event = 1000, 100
    traffic = _traffic()
    n_jobs = sum(len(s.jobs) for s in traffic)
    _run(reference_dist, "vectorized", 64)  # warm PPF / policy tables
    t0 = time.perf_counter()
    event = _run(reference_dist, "event", n_event)
    t1 = time.perf_counter()
    vec = _run(reference_dist, "vectorized", n)
    t2 = time.perf_counter()
    event_s = (t1 - t0) * (n / n_event)
    vec_s = t2 - t1
    speedup = event_s / vec_s
    print(
        f"\nevent (scaled from n={n_event}): {event_s:.1f}s  "
        f"vectorized: {vec_s:.2f}s  speedup: {speedup:.0f}x "
        f"at n={n}, {len(traffic)} bags / {n_jobs} jobs, "
        f"{N_TENANTS} tenants, max_vms {MAX_VMS}"
    )
    assert speedup >= 10.0
    assert vec.n_replications == n
    # Outcome parity at the event leg's width (the round protocol is
    # full-width, so a 1000-wide sweep is not a superset of a 100-wide
    # one — compare like with like).
    vec_small = _run(reference_dist, "vectorized", n_event)
    np.testing.assert_allclose(
        vec_small.makespan, event.makespan, rtol=0.0, atol=1e-9
    )
    np.testing.assert_array_equal(vec_small.n_events, event.n_events)
    write_bench_record(
        "tenancy",
        config={
            "n_replications": n,
            "n_tenants": N_TENANTS,
            "n_bags": len(traffic),
            "n_jobs": n_jobs,
            "max_vms": MAX_VMS,
            "scheduling": "fair",
            "event_seconds_measured_at": n_event,
            "floor": 10.0,
        },
        speedup=speedup,
        phase_seconds={
            "event_scaled": event_s,
            "vectorized": vec_s,
        },
    )

"""Fig. 7 benchmark: policy sensitivity to wrong model parameters."""

import pytest

from repro.experiments import fig7_sensitivity

pytestmark = pytest.mark.benchmark


def test_fig7_sensitivity_sweep(benchmark):
    result = benchmark.pedantic(
        fig7_sensitivity.run,
        kwargs=dict(num_lengths=10, num_ages=32),
        rounds=3,
        iterations=1,
    )
    assert result.max_suboptimality_gap() < 0.05

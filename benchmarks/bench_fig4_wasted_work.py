"""Fig. 4 benchmark: wasted-work / runtime-increase series (Eqs. 5, 7)."""

import pytest

from repro.experiments import fig4_wasted_work

pytestmark = pytest.mark.benchmark


def test_fig4_series(benchmark):
    result = benchmark(fig4_wasted_work.run, num=48)
    assert 3.0 < result.crossover_hours < 7.0
    assert result.increase_ratio_at(10.0) > 3.0

"""Event vs vectorized *service* backend at 1k replications x 100-job bags.

The headline claim of the full-controller kernel: sweeping a complete
Fig. 9-style service run — 100 gang jobs submitted to a cold
16-worker-cap ``BatchComputingService`` with deficit provisioning,
Eq. 8 bag-estimate filtering, hot-spare retention timers, and master
billing — across 1000 replications runs an order of magnitude faster
through the lockstep NumPy rounds than through 1000 real controller
event loops, with identical per-replication outcomes
(tests/test_service_backend_equivalence.py).  ``test_speedup_at_1k``
pins the >= 10x floor from the issue's acceptance criteria (measured
~30-60x) and emits a ``BENCH_service.json`` record at the repo root
(the shared ``benchmarks/_record.py`` envelope).
"""

import time

import numpy as np
import pytest
from _record import write_bench_record

from repro.sim.backend import run_service_replications

pytestmark = pytest.mark.benchmark

MAX_VMS = 16
N_JOBS = 100


def _bag():
    """A mixed 100-job bag shaped like the Fig. 9 applications."""
    rng = np.random.default_rng(7)
    hours = rng.uniform(0.2, 1.2, N_JOBS)
    widths = rng.choice([1, 2, 4], N_JOBS)
    return [(float(h), int(w)) for h, w in zip(hours, widths)]


def _run(dist, backend, n):
    return run_service_replications(
        dist,
        _bag(),
        n_replications=n,
        seed=0,
        backend=backend,
        max_vms=MAX_VMS,
    )


@pytest.mark.parametrize("n", [100, 1000], ids=["100", "1k"])
def test_vectorized_backend(benchmark, reference_dist, n):
    out = benchmark(_run, reference_dist, "vectorized", n)
    assert out.n_replications == n


def test_event_backend_100(benchmark, reference_dist):
    out = benchmark.pedantic(
        _run, args=(reference_dist, "event", 100), rounds=1, iterations=1
    )
    assert out.n_replications == 100


def test_speedup_at_1k(reference_dist):
    """Acceptance floor: vectorized >= 10x faster at 1k x 100-job bags.

    The event leg is timed at 200 replications and scaled linearly (one
    independent controller loop per replication), keeping the benchmark
    under a couple of minutes while the floor check stays conservative.
    """
    n, n_event = 1000, 200
    _run(reference_dist, "vectorized", 64)  # warm PPF / policy tables
    t0 = time.perf_counter()
    event = _run(reference_dist, "event", n_event)
    t1 = time.perf_counter()
    vec = _run(reference_dist, "vectorized", n)
    t2 = time.perf_counter()
    event_s = (t1 - t0) * (n / n_event)
    vec_s = t2 - t1
    speedup = event_s / vec_s
    print(
        f"\nevent (scaled from n={n_event}): {event_s:.1f}s  "
        f"vectorized: {vec_s:.2f}s  speedup: {speedup:.0f}x "
        f"at n={n}, {N_JOBS}-job bag, max_vms {MAX_VMS}"
    )
    assert speedup >= 10.0
    assert vec.n_replications == n
    # Outcome parity at the event leg's width (the round protocol is
    # full-width, so a 1000-wide sweep is not a superset of a 200-wide
    # one — compare like with like).
    vec_small = _run(reference_dist, "vectorized", n_event)
    np.testing.assert_allclose(
        vec_small.makespan, event.makespan, rtol=0.0, atol=1e-9
    )
    np.testing.assert_array_equal(vec_small.n_events, event.n_events)
    write_bench_record(
        "service",
        config={
            "n_replications": n,
            "n_jobs": N_JOBS,
            "max_vms": MAX_VMS,
            "event_seconds_measured_at": n_event,
            "floor": 10.0,
        },
        speedup=speedup,
        phase_seconds={
            "event_scaled": event_s,
            "vectorized": vec_s,
        },
    )

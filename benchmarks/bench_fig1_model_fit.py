"""Fig. 1 benchmark: trace generation + all model fits."""

import pytest

from repro.experiments import fig1_model_fit

pytestmark = pytest.mark.benchmark


def test_fig1_model_comparison(benchmark):
    result = benchmark.pedantic(
        fig1_model_fit.run, kwargs=dict(n_vms=120, seed=7), rounds=3, iterations=1
    )
    assert result.winner == "bathtub"
    assert result.scores["bathtub"].r2 > 0.97

"""The SoA-core acceptance record: compiled speedup + sharded scale.

Two claims of the structure-of-arrays / sharding work, measured end to
end and emitted as ``BENCH_soa_core.json`` at the repo root:

- ``test_compiled_speedup_floor`` pins the >= 10x
  ``backend="vectorized-compiled"`` floor over the NumPy kernel at
  1000 replications of dense Young–Daly checkpoint plans (20-minute
  interval over 1600 h and 3200 h of work — K = 4800 and 9600
  segments) under the reference bathtub law, min-of-repeats on both
  legs, with byte-identity of the two backends asserted on every
  outcome array first.
- ``test_tenancy_scale_sweep`` streams a >= 100k-replication tenancy
  sweep through ``chunk_size`` x ``workers`` — the constant-memory
  composition — and records wall time and peak RSS; the merged batch
  must be finite, full-length, and byte-identical to a serial spot
  check on a prefix chunk.
"""

import resource
import time

import numpy as np
import pytest
from _record import write_bench_record

from repro.policies.youngdaly import young_daly_schedule
from repro.sim.backend import run_replications, run_tenant_replications

pytestmark = pytest.mark.benchmark

DELTA = 1.0 / 60.0
INTERVAL = 1.0 / 3.0  # 20-minute Young-Daly checkpoint interval
RESTART_LATENCY = 0.1
N_PLAN = 1000
REPEATS = 9

TRAFFIC = [
    (0, 0.0, [(0.6, 1), (0.4, 2)]),
    (1, 0.3, [(0.5, 1), (0.5, 1)]),
    (2, 0.9, [(0.8, 2)]),
    (0, 1.4, [(0.3, 1)]),
]
N_SCALE = 100_000
CHUNK = 2_000
WORKERS = 2


def _min_of(repeats, fn):
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_compiled_speedup_floor(reference_dist):
    """>= 10x over the vectorized kernel at 1k replications, exact."""
    from repro.sim.compiled import available_providers

    providers = available_providers()
    assert providers, "no compiled provider available on this machine"
    configs = []
    for work_hours in (1600.0, 3200.0):
        segments = young_daly_schedule(work_hours, INTERVAL)
        kwargs = dict(
            delta=DELTA,
            restart_latency=RESTART_LATENCY,
            n_replications=N_PLAN,
            seed=0,
            max_rounds=100_000,
        )
        base = run_replications(
            reference_dist, segments, backend="vectorized", **kwargs
        )
        compiled = run_replications(
            reference_dist, segments, backend="vectorized-compiled", **kwargs
        )
        np.testing.assert_array_equal(base.makespan, compiled.makespan)
        np.testing.assert_array_equal(base.wasted_hours, compiled.wasted_hours)
        np.testing.assert_array_equal(base.n_restarts, compiled.n_restarts)
        vec_s = _min_of(
            REPEATS,
            lambda: run_replications(
                reference_dist, segments, backend="vectorized", **kwargs
            ),
        )
        comp_s = _min_of(
            REPEATS,
            lambda: run_replications(
                reference_dist, segments, backend="vectorized-compiled", **kwargs
            ),
        )
        speedup = vec_s / comp_s
        print(
            f"\nwork={work_hours:.0f}h K={len(segments)}: "
            f"vectorized {vec_s * 1e3:.2f}ms  compiled {comp_s * 1e3:.2f}ms  "
            f"speedup {speedup:.2f}x (min of {REPEATS})"
        )
        configs.append(
            {
                "work_hours": work_hours,
                "n_segments": len(segments),
                "n_replications": N_PLAN,
                "vectorized_ms": round(vec_s * 1e3, 2),
                "compiled_ms": round(comp_s * 1e3, 2),
                "speedup": round(speedup, 2),
            }
        )
    best = max(c["speedup"] for c in configs)
    assert best >= 10.0, f"compiled speedup {best:.2f}x below the 10x floor"
    test_compiled_speedup_floor.result = {
        "providers": list(providers),
        "floor": 10.0,
        "repeats": REPEATS,
        "configs": configs,
    }


def test_tenancy_scale_sweep(reference_dist):
    """A >= 100k-replication sweep in constant memory per worker."""
    t0 = time.perf_counter()
    out = run_tenant_replications(
        reference_dist,
        TRAFFIC,
        n_replications=N_SCALE,
        seed=0,
        max_vms=4,
        scheduling="fair",
        chunk_size=CHUNK,
        workers=WORKERS,
    )
    sweep_s = time.perf_counter() - t0
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    assert out.makespan.shape == (N_SCALE,)
    assert np.all(np.isfinite(out.makespan))
    # CRN spot check: chunk 0 of the sharded sweep is byte-identical to
    # a bare serial run of the same prefix.
    prefix = run_tenant_replications(
        reference_dist, TRAFFIC, n_replications=CHUNK, seed=0,
        max_vms=4, scheduling="fair",
    )
    np.testing.assert_array_equal(out.makespan[:CHUNK], prefix.makespan)
    np.testing.assert_array_equal(out.vm_hours[:CHUNK], prefix.vm_hours)
    print(
        f"\n{N_SCALE} replications x {sum(len(j) for _, _, j in TRAFFIC)} jobs: "
        f"{sweep_s:.1f}s at chunk_size={CHUNK}, workers={WORKERS}; "
        f"parent peak RSS {peak_rss_mb:.0f} MB"
    )
    compiled = getattr(test_compiled_speedup_floor, "result", None)
    write_bench_record(
        "soa_core",
        config={
            "n_replications": N_SCALE,
            "n_jobs": sum(len(j) for _, _, j in TRAFFIC),
            "chunk_size": CHUNK,
            "workers": WORKERS,
            "scheduling": "fair",
            "max_vms": 4,
        },
        speedup=(
            max(c["speedup"] for c in compiled["configs"])
            if compiled
            else None
        ),
        phase_seconds={"tenancy_scale_sweep": sweep_s},
        results={
            "compiled_speedup": compiled,
            "tenancy_scale_sweep": {
                "parent_peak_rss_mb": round(peak_rss_mb, 1),
                "mean_makespan_hours": round(float(out.mean_makespan), 3),
            },
        },
    )

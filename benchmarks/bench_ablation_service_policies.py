"""Ablation: service-level policy knobs (reuse policy, hot-spare window).

Each configuration runs the same Nanoconfinement-shaped bag; assertions
record the directional claims (policy completes the bag; spares bounded).
"""

import pytest

from repro.service.api import BagRequest, JobRequest
from repro.service.controller import BatchComputingService, ServiceConfig
from repro.sim.cloud import CloudProvider
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.traces.catalog import default_catalog

pytestmark = pytest.mark.benchmark


def _run_service(use_reuse_policy: bool, hot_spare_hours: float, seed: int = 77):
    sim = Simulator()
    cat = default_catalog()
    cloud = CloudProvider(sim, cat, RandomStreams(seed))
    model = cat.distribution("n1-highcpu-16", "us-central1-c")
    svc = BatchComputingService(
        sim,
        cloud,
        model,
        ServiceConfig(
            vm_type="n1-highcpu-16",
            max_vms=8,
            use_reuse_policy=use_reuse_policy,
            hot_spare_hours=hot_spare_hours,
        ),
    )
    bid = svc.submit_bag(
        BagRequest(jobs=[JobRequest(work_hours=14.0 / 60.0, width=2)] * 30)
    )
    svc.run_until_bag_done(bid)
    svc.shutdown()
    return svc.report(bid)


@pytest.mark.parametrize("use_policy", [True, False], ids=["model-reuse", "memoryless"])
def test_reuse_policy_ablation(benchmark, use_policy):
    rep = benchmark.pedantic(
        _run_service, args=(use_policy, 1.0), rounds=3, iterations=1
    )
    assert rep.metrics.n_jobs_completed == 30
    assert rep.cost_reduction_factor > 2.0


@pytest.mark.parametrize("spare_hours", [0.25, 1.0, 3.0])
def test_hot_spare_window_ablation(benchmark, spare_hours):
    rep = benchmark.pedantic(
        _run_service, args=(True, spare_hours), rounds=3, iterations=1
    )
    assert rep.metrics.n_jobs_completed == 30

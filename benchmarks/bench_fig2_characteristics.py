"""Fig. 2 benchmark: per-group trace generation and empirical CDFs."""

import pytest

from repro.experiments import fig2_characteristics

pytestmark = pytest.mark.benchmark


def test_fig2_breakdowns(benchmark):
    result = benchmark.pedantic(
        fig2_characteristics.run, kwargs=dict(per_config=150, seed=11), rounds=3, iterations=1
    )
    assert result.means["n1-highcpu-2"] > result.means["n1-highcpu-32"]

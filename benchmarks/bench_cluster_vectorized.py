"""Event vs vectorized cluster backend at 1k replications x 100-job bags.

The headline claim of the gang-scheduling kernel: sweeping a whole
Fig. 9-style cluster scenario — 100 gang jobs over a 16-VM preemptible
pool — across 1000 replications runs ~40x faster through the lockstep
NumPy rounds than through 1000 event-driven ClusterManager loops, with
identical per-replication outcomes (tests/test_cluster_backend_equivalence.py).
``test_speedup_at_1k`` pins the >= 10x floor from the issue's
acceptance criteria; the measured ratio is ~40x.
"""

import time

import numpy as np
import pytest

from repro.sim.backend import run_cluster_replications

pytestmark = pytest.mark.benchmark

POOL = 16
N_JOBS = 100


def _bag():
    """A mixed 100-job bag shaped like the Fig. 9 applications."""
    rng = np.random.default_rng(7)
    hours = rng.uniform(0.2, 1.2, N_JOBS)
    widths = rng.choice([1, 2, 4], N_JOBS)
    return [(float(h), int(w)) for h, w in zip(hours, widths)]


def _run(dist, backend, n):
    return run_cluster_replications(
        dist,
        _bag(),
        n_replications=n,
        seed=0,
        backend=backend,
        pool_size=POOL,
    )


@pytest.mark.parametrize("n", [100, 1000], ids=["100", "1k"])
def test_vectorized_backend(benchmark, reference_dist, n):
    out = benchmark(_run, reference_dist, "vectorized", n)
    assert out.n_replications == n


def test_event_backend_100(benchmark, reference_dist):
    out = benchmark.pedantic(
        _run, args=(reference_dist, "event", 100), rounds=1, iterations=1
    )
    assert out.n_replications == 100


def test_speedup_at_1k(reference_dist):
    """Acceptance floor: vectorized >= 10x faster at 1k x 100-job bags."""
    n = 1000
    _run(reference_dist, "vectorized", 64)  # warm PPF / policy tables
    t0 = time.perf_counter()
    event = _run(reference_dist, "event", n)
    t1 = time.perf_counter()
    vec = _run(reference_dist, "vectorized", n)
    t2 = time.perf_counter()
    event_s, vec_s = t1 - t0, t2 - t1
    speedup = event_s / vec_s
    print(
        f"\nevent: {event_s:.1f}s  vectorized: {vec_s:.2f}s  "
        f"speedup: {speedup:.0f}x at n={n}, {N_JOBS}-job bag, pool {POOL}"
    )
    assert speedup >= 10.0
    np.testing.assert_allclose(
        vec.makespan, event.makespan, rtol=0.0, atol=1e-9
    )
    np.testing.assert_array_equal(vec.n_events, event.n_events)
